"""Campaign throughput — differential replay and the parallel engine.

Measures trials/second for seeded fault-injection campaigns run through
``repro.swifi.run_campaign`` along two axes:

* **differential vs full execution** — the same serial campaign with
  the differential trial engine on (the default) and off, for CP and
  for PNS (a long-looping kernel where single-thread replay pays off
  most).  The best ``speedup_diff_vs_full`` is asserted >= 3x.  Trials
  whose fault hangs the target thread are the floor on any campaign's
  speedup: the wandering thread's statements are real work in both
  worlds, so a spec draw with hang trials measures their full cost
  plus only the *other* trials' savings.
* **worker scaling** — the CP differential campaign with 1 / 2 / 4
  worker processes.  Worker speedups are reported, not asserted: they
  depend on visible CPUs, and on a single-core container the fork pool
  legitimately measures near-1x — those configs carry
  ``"cpu_limited": true`` so downstream readers don't mistake a
  scheduling artifact for a regression.

Every configuration of a workload must produce the same ``summary()``
(the determinism contract); results land in ``BENCH_campaign.json`` at
the repo root.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.program import HauberkProgram
from repro.exec import fork_available
from repro.harness.reporting import format_table
from repro.swifi import (
    CampaignOptions,
    build_fault_specs,
    run_campaign,
    select_targets,
)
from repro.workloads import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKER_COUNTS = (1, 2, 4)
#: The PNS pair uses single-bit flips (the paper's primary fault
#: model).  A flip that lands in a loop bound turns the trial into a
#: watchdog hang — genuine faulted-thread work the replay executes
#: just like the full run — so a handful of hang trials bounds the
#: campaign speedup (Amdahl); masked/detected trials replay in ~1% of
#: the full-grid time.


def _specs(scale, name, n_trials=None, bit_counts=(1, 6)):
    wl = get_workload(name)
    rng = np.random.default_rng(scale.seed + 77)
    sites = select_targets(wl.kernel, scale.max_targets, rng)
    inp = wl.generate_input(0)
    specs = build_fault_specs(
        sites,
        n_threads=inp.n_threads,
        masks_per_site=scale.masks_per_site,
        bit_counts=bit_counts,
        seed=scale.seed + 77,
    )
    return wl, specs[:n_trials] if n_trials else specs


def _timed(prog, specs, workers, differential, profile=False):
    options = CampaignOptions(workers=workers, differential=differential,
                              profile=profile)
    start = time.perf_counter()
    result = run_campaign(prog, specs, mode="fift", options=options)
    return time.perf_counter() - start, result.summary()


def _profiler_overhead(prog, specs):
    """Best-of-3 CP w1-diff wall time with the phase profiler on vs off.

    The acceptance bar for the flight recorder: profiling must cost
    <= 5% on the configuration campaigns actually run hot (serial
    differential).  Best-of-N filters scheduler noise; the absolute
    guard below keeps sub-100ms timed regions from flaking the ratio.
    """
    off = min(_timed(prog, specs, workers=1, differential=True)[0]
              for _ in range(3))
    on = min(_timed(prog, specs, workers=1, differential=True,
                    profile=True)[0]
             for _ in range(3))
    return {
        "workload": "CP",
        "config": "w1-diff",
        "profile_off_seconds": round(off, 4),
        "profile_on_seconds": round(on, 4),
        "overhead": round(on / off - 1.0, 4),
    }


def _config(key, workers, differential, elapsed, n_trials, baseline):
    entry = {
        "workers": workers,
        "differential": differential,
        "seconds": round(elapsed, 4),
        "trials_per_sec": round(n_trials / elapsed, 2),
        "speedup_vs_serial_full": round(baseline / elapsed, 3),
    }
    if workers > 1 and os.cpu_count() == 1:
        entry["cpu_limited"] = True
    return key, entry


def test_campaign_throughput(scale, report):
    workloads = {}
    rows = []
    overhead = None

    for name, n_trials, bit_counts, worker_counts in (
        ("CP", None, (1, 6), WORKER_COUNTS),
        ("PNS", None, (1,), (1,)),
    ):
        wl, specs = _specs(scale, name, n_trials, bit_counts)
        prog = HauberkProgram(wl)
        prog.train(seeds=[0])
        # Warm every shared cache (translate, compile, golden input,
        # differential golden recording) outside the timed region so
        # each configuration measures trial execution only.
        run_campaign(prog, specs[:1], mode="fift", workers=1,
                     differential=False)
        run_campaign(prog, specs[:1], mode="fift", workers=1,
                     differential=True)

        summaries = {}
        configs = {}
        full_elapsed, summaries["w1-full"] = _timed(
            prog, specs, workers=1, differential=False)
        key, entry = _config("w1-full", 1, False, full_elapsed,
                             len(specs), full_elapsed)
        configs[key] = entry
        for workers in worker_counts:
            if workers > 1 and not fork_available():
                continue
            ckey = f"w{workers}-diff"
            elapsed, summaries[ckey] = _timed(
                prog, specs, workers=workers, differential=True)
            key, entry = _config(ckey, workers, True, elapsed,
                                 len(specs), full_elapsed)
            configs[key] = entry

        diff_vs_full = round(
            full_elapsed / (configs["w1-diff"]["seconds"] or 1e-9), 3)
        workloads[name] = {
            "n_trials": len(specs),
            "configs": configs,
            "speedup_diff_vs_full": diff_vs_full,
        }
        for ckey, c in configs.items():
            rows.append((
                name, ckey, c["workers"],
                "on" if c["differential"] else "off",
                f"{c['seconds']:.2f}s", f"{c['trials_per_sec']:.1f}",
                f"{c['speedup_vs_serial_full']:.2f}x",
                "yes" if c.get("cpu_limited") else "",
            ))

        # determinism contract: identical summary for every config
        for ckey, summary in summaries.items():
            assert summary == summaries["w1-full"], \
                f"{name} {ckey} diverged from the serial full run"
        assert all(c["trials_per_sec"] > 0 for c in configs.values())

        if name == "CP":
            overhead = _profiler_overhead(prog, specs)

    payload = {
        "benchmark": "campaign_throughput",
        "mode": "fift",
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "workloads": workloads,
        "overhead": overhead,
    }
    (REPO_ROOT / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report(format_table(
        f"Campaign throughput - fift, {os.cpu_count()} visible CPU(s)",
        ["workload", "config", "workers", "diff", "wall time", "trials/s",
         "speedup", "cpu-limited"],
        rows,
    ))
    report(
        f"profiler overhead (CP w1-diff, best of 3): "
        f"{overhead['overhead'] * 100:+.1f}% "
        f"({overhead['profile_off_seconds']:.3f}s -> "
        f"{overhead['profile_on_seconds']:.3f}s)"
    )

    # flight-recorder acceptance: profiling costs <= 5% on CP w1-diff
    # (absolute floor absorbs timer noise when the region is tiny)
    assert (overhead["overhead"] <= 0.05
            or overhead["profile_on_seconds"]
            - overhead["profile_off_seconds"] <= 0.05), overhead

    # the differential engine's reason to exist: at least one eligible
    # workload must clear 3x over full execution (hang-heavy spec draws
    # legitimately bound the others — see the module docstring)
    assert max(w["speedup_diff_vs_full"] for w in workloads.values()) >= 3.0
