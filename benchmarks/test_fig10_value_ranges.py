"""Figure 10 regenerator — value distributions of MRI-Q variables.

Paper anchors: values computed for the same variable cluster sharply
(integer variables put >50% of mass in one power-of-ten decade), and
FP variables exhibit multiple sign correlation points (negative /
near-zero / positive clusters of similar magnitude).
"""

from repro.harness.fig10_ranges import run_fig10
from repro.harness.reporting import format_table


def test_fig10_value_ranges(benchmark, scale, report):
    result = benchmark.pedantic(run_fig10, args=(scale,), rounds=1, iterations=1)

    report(format_table(
        "Figure 10 - value distributions of MRI-Q kernel variables",
        ["variable", "class", "samples", "peak bucket prob", "correlation points"],
        [
            (d.name, d.cls, d.n_samples, f"{d.peak:.2f}", d.correlation_points)
            for d in result.distributions
        ],
    ))

    by_name = {d.name: d for d in result.distributions}
    # the loop counter: sharp integer peak
    assert by_name["k"].peak > 0.5
    # FP variables cluster: strong peaks across the board
    fp_vars = [d for d in result.distributions if d.cls == "fp"]
    assert fp_vars
    assert sum(d.peak > 0.25 for d in fp_vars) >= len(fp_vars) * 0.6
    # accumulators show both sign correlation points
    assert by_name["qr"].correlation_points >= 2
    assert by_name["qi"].correlation_points >= 2
