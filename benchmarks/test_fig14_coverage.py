"""Figure 14 regenerator — HAUBERK detection coverage per benchmark x bits.

Paper anchors: average coverage ~86.8% (13.2% of faults escape); for
single-bit errors the outcome mix is roughly 35.6% masked / 11.0%
failure / 21.4% detected / 22.2% detected&masked / 9.8% undetected;
multi-bit errors raise the failure ratio and lower masking.
"""

from repro.harness.fig14_coverage import run_fig14
from repro.harness.reporting import format_table, pct
from repro.swifi.outcomes import Outcome


def test_fig14_coverage(benchmark, scale, report):
    result = benchmark.pedantic(run_fig14, args=(scale,), rounds=1, iterations=1)

    rows = []
    for (name, bits), counts in sorted(result.cells.items()):
        rows.append((
            name, bits,
            pct(counts.fraction(Outcome.FAILURE)),
            pct(counts.fraction(Outcome.MASKED)),
            pct(counts.fraction(Outcome.DETECTED_MASKED)),
            pct(counts.fraction(Outcome.DETECTED)),
            pct(counts.fraction(Outcome.UNDETECTED)),
            pct(counts.coverage),
        ))
    rows.append(("AVG", "-", "", "", "", "", "", pct(result.average_coverage())))
    report(format_table(
        "Figure 14 - outcome fractions by benchmark and error bits",
        ["benchmark", "bits", "failure", "masked", "det&masked", "detected",
         "undetected", "coverage"],
        rows,
    ))

    bit_counts = sorted({b for (_n, b) in result.cells})
    # headline: high average coverage
    assert result.average_coverage() > 0.75
    # single-bit: a meaningful mix of masked / detected outcomes
    assert result.fraction(Outcome.MASKED, 1) > 0.10
    detected1 = (result.fraction(Outcome.DETECTED, 1)
                 + result.fraction(Outcome.DETECTED_MASKED, 1))
    assert detected1 > 0.15
    # multi-bit errors increase failures and decrease masking
    if len(bit_counts) > 1:
        hi = bit_counts[-1]
        assert result.fraction(Outcome.FAILURE, hi) >= result.fraction(Outcome.FAILURE, 1)
        assert result.fraction(Outcome.MASKED, hi) <= result.fraction(Outcome.MASKED, 1)
