"""Section IX.D regenerator — HAUBERK instrumentation time.

Paper anchors: the transformation proper averages 0.7 s per Parboil
program on a 2006-era machine; instrumentation is a negligible
addition to compilation.  Our translator instruments every benchmark
in milliseconds; the audit also confirms each Table I site is present.
"""

from repro.harness.reporting import format_table
from repro.harness.sec9d_instrumentation import run_sec9d


def test_sec9d_instrumentation_time(benchmark, scale, report):
    result = benchmark.pedantic(run_sec9d, args=(scale,), rounds=1, iterations=1)

    rows = [
        (r.name, r.kernel_lines, r.ft_lines, f"{r.ft_seconds * 1e3:.1f}ms",
         f"{r.fi_seconds * 1e3:.1f}ms", r.detectors, r.duplicated_defs, r.audit_ok)
        for r in result.rows
    ]
    rows.append(("AVG", "", "", f"{result.avg_seconds * 1e3:.1f}ms", "", "", "", ""))
    report(format_table(
        "Section IX.D - instrumentation time and size",
        ["benchmark", "kernel lines", "FT lines", "FT build", "FI build",
         "detectors", "duplicated defs", "Table I audit"],
        rows,
    ))

    assert len(result.rows) == 7
    assert result.avg_seconds < 1.0  # paper: 0.7 s transform on 2006 HW
    assert result.max_seconds < 5.0
    for row in result.rows:
        assert row.ft_lines > row.kernel_lines  # Table I sites were added
        assert row.detectors >= 1  # every kernel got a loop detector
        assert row.fi_seconds < row.ft_seconds + 1.0
        assert row.audit_ok  # structural Table I audit
