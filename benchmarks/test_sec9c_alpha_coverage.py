"""Section IX.C regenerator — MRI-FHD coverage vs alpha.

Paper anchors: coverage 95% / 95% / 82.8% / 81.6% at alpha 1 / 1e3 /
1e4 / 1e5 — small alphas are free because faults usually shift values
by many orders of magnitude (Figure 15); very large alphas start
admitting real corruptions.
"""

from repro.harness.reporting import format_table, pct
from repro.harness.sec9c_alpha import run_sec9c


def test_sec9c_alpha_vs_coverage(benchmark, scale, report):
    result = benchmark.pedantic(run_sec9c, args=(scale,), rounds=1, iterations=1)

    report(format_table(
        "Section IX.C - MRI-FHD detection coverage vs alpha",
        ["alpha", "coverage"],
        [(f"{a:g}", pct(c)) for a, c in result.coverage.items()],
    ))

    alphas = sorted(result.coverage)
    coverages = [result.coverage[a] for a in alphas]
    # coverage never improves as alpha loosens the bounds
    assert all(a >= b - 0.02 for a, b in zip(coverages, coverages[1:]))
    # tight bounds (alpha=1) give the best coverage of this fault class
    assert result.coverage[alphas[0]] >= result.coverage[alphas[-1]]
    # the moderate-magnitude fault band is genuinely hard for range
    # detectors on short loops; see EXPERIMENTS.md for the deviation
    # discussion vs the paper's 95% -> 81.6% curve
    assert result.coverage[alphas[0]] > 0.25
