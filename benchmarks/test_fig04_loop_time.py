"""Figure 4 regenerator — GPU time spent on loops.

Paper anchors (Observation 4): loops take >98% of GPU time in 5 of 7
programs and ~87% on average; RPES is the sequential-code outlier.
Uses the LOOPY preset (paper-like loop trip counts).
"""

from repro.harness.config import LOOPY, SMOKE
from repro.harness.fig04_loops import run_fig04
from repro.harness.reporting import format_table, pct


def test_fig04_loop_time(benchmark, scale, report):
    use = SMOKE if scale is SMOKE else LOOPY
    result = benchmark.pedantic(run_fig04, args=(use,), rounds=1, iterations=1)

    rows = [(n, pct(f)) for n, f in result.loop_fraction.items()]
    rows.append(("AVG", pct(result.average)))
    report(format_table(
        "Figure 4 - GPU execution time spent on loops",
        ["benchmark", "loop time"],
        rows,
    ))

    fracs = result.loop_fraction
    assert fracs["RPES"] < 0.6
    dominated = [n for n, f in fracs.items() if f > 0.95]
    assert len(dominated) >= 5  # ">98% in 5 out of 7" at paper-like sizes
    assert 0.80 < result.average < 0.95  # paper: 87% average
