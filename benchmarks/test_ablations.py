"""Ablation studies of the design choices DESIGN.md calls out.

Not figures from the paper, but the studies a reviewer would ask for:

* **Maxvar sweep** — Section V.B lets users protect up to Maxvar loop
  variables; the paper evaluates Maxvar=1.  More protected variables
  should buy coverage for extra loop-body adds.
* **Checksum-only NL** — drop the duplicated computations and keep only
  the shared checksum: cheaper non-loop protection that can no longer
  catch errors *during* a computation, only corruption of the stored
  value afterwards.
* **Trip-count invariant** — the HauberkCheckEqual detector is what
  catches loop-control corruption (Section IX.B's corrupted-iterator
  case); faults on the loop iterator must be caught.
"""

import numpy as np
import pytest

from repro.core.program import HauberkProgram
from repro.core.translator import TranslatorOptions
from repro.harness.reporting import format_table, pct
from repro.swifi import Campaign, FaultSpec, build_fault_specs, enumerate_targets
from repro.workloads import get_workload


def _coverage_and_overhead(name, options, scale, seed=11):
    wl = get_workload(name)
    prog = HauberkProgram(wl, options=options)
    prog.train(seeds=list(scale.training_seeds))
    inp = wl.generate_input(0)
    baseline = prog.measure_time("original", inp=inp)
    ft_time = prog.measure_time("ft", inp=inp)
    campaign = Campaign(prog.trial_runner("fift"))
    sites = enumerate_targets(wl.kernel)[: scale.max_targets]
    specs = build_fault_specs(
        sites, n_threads=inp.n_threads,
        masks_per_site=scale.masks_per_site, bit_counts=(1, 6), seed=seed,
    )
    result = campaign.run(specs)
    return result.counts.coverage, 100.0 * (ft_time / baseline - 1.0)


def test_maxvar_sweep(benchmark, scale, report):
    """More protected loop variables: >= coverage, >= overhead."""

    def run():
        rows = {}
        for maxvar in (1, 2, 3):
            rows[maxvar] = _coverage_and_overhead(
                "MRI-FHD", TranslatorOptions(maxvar=maxvar), scale
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        "Ablation - Maxvar sweep on MRI-FHD",
        ["Maxvar", "coverage", "overhead"],
        [(m, pct(c), f"{o:.1f}%") for m, (c, o) in rows.items()],
    ))
    cov1, oh1 = rows[1]
    cov3, oh3 = rows[3]
    assert oh3 >= oh1 - 0.5  # extra accumulators cost cycles
    assert cov3 >= cov1 - 0.05  # and never meaningfully hurt coverage


def test_checksum_only_ablation(benchmark, scale, report):
    """Dropping duplication cuts RPES's overhead, trading detection."""

    def run():
        full = _coverage_and_overhead("RPES", TranslatorOptions(), scale)
        cheap = _coverage_and_overhead(
            "RPES", TranslatorOptions(nl_checksum_only=True), scale
        )
        return full, cheap

    (full_cov, full_oh), (cheap_cov, cheap_oh) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(format_table(
        "Ablation - checksum-only HAUBERK-NL on RPES",
        ["variant", "coverage", "overhead"],
        [("full NL (dup + checksum)", pct(full_cov), f"{full_oh:.1f}%"),
         ("checksum only", pct(cheap_cov), f"{cheap_oh:.1f}%")],
    ))
    assert cheap_oh < full_oh  # the duplication is the expensive half
    assert cheap_cov <= full_cov + 0.05


def test_trip_count_detector_catches_iterator_faults(benchmark, scale, report):
    """Corrupting the loop iterator must trip HauberkCheckEqual or hang."""

    def run():
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        prog.train(seeds=list(scale.training_seeds))
        inp = wl.generate_input(0)
        iter_sites = [
            s for s in enumerate_targets(wl.kernel)
            if s.name == "k" and s.kind == "assign"
        ]
        outcomes = {"detected": 0, "failure": 0, "escaped": 0, "masked": 0}
        rng = np.random.default_rng(3)
        for j in range(16):
            spec = FaultSpec(
                site=iter_sites[0].site,
                mask=1 << int(rng.integers(0, 31)),
                thread=int(rng.integers(0, inp.n_threads)),
                occurrence=int(rng.integers(1, wl.numk // 2)),
            )
            result = prog.run(mode="fift", inp=inp, fault=spec)
            golden = wl.golden(inp)
            if result.status.value != "ok":
                outcomes["failure"] += 1
            elif result.alarm:
                outcomes["detected"] += 1
            elif wl.spec.check(result.output, golden):
                outcomes["masked"] += 1
            else:
                outcomes["escaped"] += 1
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(outcomes.values())
    report(format_table(
        "Ablation - loop-iterator faults vs the trip-count invariant (MRI-Q)",
        ["outcome", "count", "fraction"],
        [(k, v, pct(v / total)) for k, v in outcomes.items()],
    ))
    # iterator corruption must essentially never escape silently
    assert outcomes["escaped"] <= max(1, total // 8)
    assert outcomes["detected"] + outcomes["failure"] >= total // 3
