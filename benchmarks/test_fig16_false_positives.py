"""Figure 16 regenerator — false-positive ratio vs training-set count.

Paper anchors: PNS's ratio collapses to ~0 after about 7 training sets
(fixed simulation model); MRI-FHD stays ~30% even after 50 sets at
alpha=1 (vector-product output scales vary per dataset); raising alpha
(2 / 10 / 100) drives MRI-FHD's ratio down with only a few sets.
"""

from repro.harness.fig16_falsepos import MRIFHD_ALPHAS, run_fig16
from repro.harness.reporting import format_table, pct


def test_fig16_false_positives(benchmark, scale, report):
    result = benchmark.pedantic(run_fig16, args=(scale,), rounds=1, iterations=1)

    report(format_table(
        "Figure 16 - false-positive ratio vs number of training sets",
        ["program", "alpha", "training sets", "FP ratio"],
        [(p, f"{a:g}", k, pct(v)) for (p, a, k), v in sorted(result.ratios.items())],
    ))

    counts = sorted({k for (_p, _a, k) in result.ratios})
    first, last = counts[0], counts[-1]

    def mean(series):
        return sum(series.values()) / len(series)

    pns = result.series("PNS")
    fhd1 = result.series("MRI-FHD", alpha=1.0)
    fhd100 = result.series("MRI-FHD", alpha=MRIFHD_ALPHAS[-1])
    # PNS converges quickly and ends near zero (fixed simulation model)
    assert pns[last] <= pns[first]
    assert pns[last] < 0.15
    # MRI-FHD's ratio decays more slowly than PNS's overall
    assert mean(fhd1) > mean(pns)
    # larger alpha strictly helps MRI-FHD (paper's right panel)
    assert mean(fhd100) <= mean(fhd1)
    assert fhd100[last] <= fhd1[last] + 1e-9
    # CP and TPACF converge to modest ratios
    for prog_name in ("CP", "TPACF"):
        series = result.series(prog_name)
        assert series[last] < 0.35, prog_name
