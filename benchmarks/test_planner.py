"""Statistical campaign planner — sampling accuracy and incremental reuse.

The planner's two savings claims (``repro.swifi.planner`` +
``repro.swifi.journal.adopt_compatible``), measured end to end:

* **Stratified accuracy** — for CP and PNS, an exhaustive ``fi``
  campaign establishes the ground-truth SDC ratio; a stratified plan
  running at most 20% of the population must bracket that truth inside
  its 95% confidence interval.  This is the Two-Level-Model bet: the
  (section, sensitivity, bit-band, thread-band) strata are homogeneous
  enough that a fifth of the trials pins the campaign-level rates.
* **Incremental re-injection** — a three-chain synthetic kernel is run
  exhaustively, one chain's constant is edited, and the campaign is
  resumed.  Only the edited chain's dependency closure (the chain plus
  the parameter section every chain reads) may re-execute — measured
  below 50% of the trials — and every adopted record must be
  bit-identical to the donor's, while the overall result stays
  bit-identical to a from-scratch campaign on the edited kernel.

Results land in ``BENCH_planner.json`` at the repo root with the
active scale preset recorded (``scripts/bench_trend.py`` refuses
cross-scale comparisons).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.core.program import HauberkProgram
from repro.harness.reporting import format_table
from repro.kir.analysis import (
    affected_sections,
    kernel_sections,
    site_section_map,
)
from repro.kir.types import DType
from repro.swifi import (
    CampaignOptions,
    build_fault_specs,
    enumerate_targets,
    run_campaign,
    select_targets,
)
from repro.workloads import get_workload
from repro.workloads.base import BufferSpec, Workload, WorkloadInput

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Acceptance bar: the planned campaign may spend at most this fraction
#: of the exhaustive population.
BUDGET_FRACTION = 0.20
#: Acceptance bar: the incremental resume may re-execute at most this
#: fraction of the trials after a one-section edit.
REEXEC_FRACTION = 0.50


def _scale_name():
    raw = os.environ.get("REPRO_BENCH_SCALE", "").lower()
    return "smoke" if raw == "smoke" else "campaign"


# -- stratified accuracy ---------------------------------------------------


def _population(scale, name):
    """A spec population large enough that 20% of it is a real sample.

    The scale preset's ``masks_per_site`` targets exhaustive campaign
    *wall time*; here the exhaustive run is the baseline being beaten,
    so the population is widened (more masks per site) to give the 20%
    budget a statistically meaningful allocation per stratum.
    """
    wl = get_workload(name)
    rng = np.random.default_rng(scale.seed + 31)
    sites = select_targets(wl.kernel, scale.max_targets, rng)
    inp = wl.generate_input(0)
    specs = build_fault_specs(
        sites, n_threads=inp.n_threads,
        masks_per_site=max(6, scale.masks_per_site * 2),
        bit_counts=(1, 2, 3, 6, 10), seed=scale.seed + 31,
    )
    return wl, specs


def _accuracy_entry(scale, name):
    wl, specs = _population(scale, name)
    budget = max(4, math.floor(len(specs) * BUDGET_FRACTION))

    start = time.perf_counter()
    exhaustive = run_campaign(HauberkProgram(wl), specs, mode="fi")
    exhaustive_seconds = time.perf_counter() - start
    truth = exhaustive.summary()["sdc_ratio"]

    start = time.perf_counter()
    planned = run_campaign(
        HauberkProgram(get_workload(name)), specs, mode="fi",
        options=CampaignOptions(budget=budget),
    )
    planned_seconds = time.perf_counter() - start
    plan = planned.summary()["plan"]
    lo, hi = plan["estimates"]["sdc_ratio"]["ci"]

    return {
        "population": len(specs),
        "budget": budget,
        "trials_run": len(planned.trials),
        "trials_saved_ratio": round(plan["trials_saved"] / len(specs), 4),
        "exhaustive_sdc_ratio": round(truth, 6),
        "estimated_sdc_ratio": round(
            plan["estimates"]["sdc_ratio"]["value"], 6
        ),
        "ci": [round(lo, 6), round(hi, 6)],
        "contained": bool(lo - 1e-12 <= truth <= hi + 1e-12),
        "strata": plan["strata"],
        "exhaustive_seconds": round(exhaustive_seconds, 4),
        "planned_seconds": round(planned_seconds, 4),
        "speedup_planned_vs_exhaustive": round(
            exhaustive_seconds / planned_seconds, 3
        ),
    }


# -- incremental re-injection ----------------------------------------------

_CHAIN_N = 4

THREE_CHAIN_SRC = """
kernel threechain(float* src, float* o1, float* o2, float* o3) {
    int t1 = blockIdx.x * blockDim.x + threadIdx.x;
    float a1 = src[t1] * 2.0;
    float b1 = a1 + 1.0;
    float c1 = b1 * b1;
    float d1 = c1 - a1;
    o1[t1] = d1;
    __syncthreads();
    int t2 = blockIdx.x * blockDim.x + threadIdx.x;
    float a2 = src[t2] * 3.0;
    float b2 = a2 + 2.0;
    float c2 = b2 * b2;
    float d2 = c2 - a2;
    o2[t2] = d2;
    __syncthreads();
    int t3 = blockIdx.x * blockDim.x + threadIdx.x;
    float a3 = src[t3] * 4.0;
    float b3 = a3 + 3.0;
    float c3 = b3 * b3;
    float d3 = c3 - a3;
    o3[t3] = d3;
}
"""


class ThreeChainWorkload(Workload):
    """Three dataflow-independent chains reading one shared input."""

    name = "THREECHAIN"
    source = THREE_CHAIN_SRC
    chain2_offset = 2.0

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 13)
        src = rng.uniform(0.5, 2.0, _CHAIN_N).astype(np.float32)
        zeros = [np.zeros(_CHAIN_N, dtype=np.float32) for _ in range(3)]
        return WorkloadInput(
            buffers=[
                BufferSpec("src", DType.FLOAT32, _CHAIN_N, src),
                BufferSpec("o1", DType.FLOAT32, _CHAIN_N, zeros[0]),
                BufferSpec("o2", DType.FLOAT32, _CHAIN_N, zeros[1]),
                BufferSpec("o3", DType.FLOAT32, _CHAIN_N, zeros[2]),
            ],
            scalars={},
            buffer_params={"src": "src", "o1": "o1", "o2": "o2", "o3": "o3"},
            outputs=["o1", "o2", "o3"],
            grid=(1, 1),
            block=(_CHAIN_N, 1),
            meta={"src": src},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        src = inp.meta["src"]

        def chain(mul, add):
            a = src * np.float32(mul)
            b = a + np.float32(add)
            c = b * b
            return (c - a).astype(np.float64)

        return np.concatenate([
            chain(2.0, 1.0),
            chain(3.0, self.chain2_offset),
            chain(4.0, 3.0),
        ])


class ThreeChainEdited(ThreeChainWorkload):
    """Chain 2's additive constant changed; chains 1 and 3 untouched."""

    source = THREE_CHAIN_SRC.replace("a2 + 2.0", "a2 + 2.5")
    chain2_offset = 2.5


def _three_chain_specs(wl, masks_per_site):
    return build_fault_specs(
        enumerate_targets(wl.kernel), n_threads=_CHAIN_N,
        masks_per_site=masks_per_site, bit_counts=(1, 3), seed=9,
    )


def _counting_program(wl, executed):
    prog = HauberkProgram(wl)
    orig = prog.trial_runner

    def counting(mode, seed):
        base = orig(mode, seed)

        def runner(spec):
            executed.append(spec.site)
            return base(spec)

        return runner

    prog.trial_runner = counting
    return prog


def _incremental_entry(scale, run_root):
    masks = max(2, scale.masks_per_site)
    wl1 = ThreeChainWorkload()
    specs = _three_chain_specs(wl1, masks)
    opts = CampaignOptions(workers=1, differential=False)

    donor = run_campaign(HauberkProgram(wl1), specs, mode="fi",
                         options=opts.evolve(run_dir=run_root))
    baseline = run_campaign(HauberkProgram(ThreeChainEdited()), specs,
                            mode="fi", options=opts)

    executed = []
    start = time.perf_counter()
    resumed = run_campaign(
        _counting_program(ThreeChainEdited(), executed), specs, mode="fi",
        options=opts.evolve(resume=run_root),
    )
    resumed_seconds = time.perf_counter() - start

    # correctness: the incremental result is bit-identical to a
    # from-scratch campaign on the edited kernel
    assert resumed.summary() == baseline.summary()
    assert [t.outcome for t in resumed.trials] == \
        [t.outcome for t in baseline.trials]
    assert [t.observation for t in resumed.trials] == \
        [t.observation for t in baseline.trials]

    # staleness: only the edited chain's closure re-executed
    kernel = ThreeChainEdited().kernel
    sections = kernel_sections(kernel)
    sec_of = site_section_map(kernel, sections)
    donor_fp = {s.name: s.fingerprint for s in kernel_sections(wl1.kernel)}
    changed = {s.name for s in sections
               if s.fingerprint != donor_fp.get(s.name)}
    stale = affected_sections(sections, changed)
    fresh_sections = {s.name for s in sections} - stale

    # adopted records are bit-identical to the donor's
    adopted_identical = all(
        resumed.trials[i].outcome == donor.trials[i].outcome
        and resumed.trials[i].observation == donor.trials[i].observation
        for i, spec in enumerate(specs)
        if sec_of[spec.site] in fresh_sections
    )
    assert adopted_identical

    reexec_ratio = len(executed) / len(specs)
    return {
        "population": len(specs),
        "reexecuted": len(executed),
        "reexec_ratio": round(reexec_ratio, 4),
        "adopted": len(specs) - len(executed),
        "reuse_ratio": round(1.0 - reexec_ratio, 4),
        "stale_sections": sorted(stale),
        "fresh_sections": sorted(fresh_sections),
        "adopted_bit_identical": bool(adopted_identical),
        "resumed_seconds": round(resumed_seconds, 4),
    }


def test_planner_accuracy_and_reuse(scale, report, tmp_path):
    workloads = {
        name: _accuracy_entry(scale, name) for name in ("CP", "PNS")
    }
    incremental = _incremental_entry(scale, str(tmp_path / "runs"))

    payload = {
        "benchmark": "planner",
        "mode": "fi",
        "scale": _scale_name(),
        "budget_fraction": BUDGET_FRACTION,
        "workloads": workloads,
        "incremental": incremental,
    }
    (REPO_ROOT / "BENCH_planner.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report(format_table(
        f"Planner accuracy - fi, {_scale_name()} scale, "
        f"<= {BUDGET_FRACTION:.0%} budget",
        ["workload", "population", "budget", "exhaustive", "estimate",
         "95% CI", "contained", "saved"],
        [
            (
                name, e["population"], e["budget"],
                f"{e['exhaustive_sdc_ratio']:.4f}",
                f"{e['estimated_sdc_ratio']:.4f}",
                f"[{e['ci'][0]:.3f}, {e['ci'][1]:.3f}]",
                "yes" if e["contained"] else "NO",
                f"{e['trials_saved_ratio']:.0%}",
            )
            for name, e in workloads.items()
        ],
    ))
    report(
        f"incremental: {incremental['reexecuted']}/"
        f"{incremental['population']} trials re-executed "
        f"({incremental['reexec_ratio']:.0%}) after a one-section edit; "
        f"{incremental['adopted']} adopted bit-identical "
        f"(stale: {', '.join(incremental['stale_sections'])})"
    )

    # acceptance: a <= 20% budget brackets the exhaustive SDC ratio
    for name, entry in workloads.items():
        assert entry["trials_run"] <= entry["budget"]
        assert entry["budget"] <= math.ceil(
            entry["population"] * BUDGET_FRACTION
        )
        assert entry["contained"], (
            f"{name}: exhaustive sdc {entry['exhaustive_sdc_ratio']} "
            f"outside CI {entry['ci']}"
        )
    # acceptance: the one-section edit re-executes < 50% of trials
    assert incremental["reexec_ratio"] < REEXEC_FRACTION
    assert incremental["adopted_bit_identical"]
