"""Figure 1 regenerator — error sensitivity of GPU HPC / graphics / CPU.

Paper anchors checked: SDC per data type on HPC GPU programs is large
(pointer 18%, integer 45%, FP 39% in the paper); FP faults essentially
never crash a kernel (Observation 2); graphics programs show ~no SDC
under single-bit faults; CPU programs sit far below GPU SDC levels
(<2.3% in the cited studies).
"""

import numpy as np

from repro.harness.fig01_sensitivity import run_fig01
from repro.harness.reporting import format_table, pct


def test_fig01_error_sensitivity(benchmark, scale, report):
    result = benchmark.pedantic(run_fig01, args=(scale,), rounds=1, iterations=1)

    rows = [
        (r.group, r.category, pct(r.failure), pct(r.sdc), pct(r.masked), r.trials)
        for r in result.rows
    ]
    report(format_table(
        "Figure 1 - error sensitivity (failure / SDC / not manifested)",
        ["group", "state class", "failure", "SDC", "not manifested", "trials"],
        rows,
    ))

    hpc_fp = result.row("gpu_hpc", "fp")
    hpc_int = result.row("gpu_hpc", "integer")
    hpc_ptr = result.row("gpu_hpc", "pointer")

    # Observation 1: every class has a substantial SDC ratio on GPU HPC
    # (paper: 18% / 45% / 39%; exact fractions move with workload
    # tuning, the claim is "all large, far above CPU levels")
    assert hpc_ptr.sdc > 0.10
    assert hpc_int.sdc > 0.25
    assert hpc_fp.sdc > 0.10
    # Observation 2: FP faults rarely crash; pointer/int faults often do
    assert hpc_fp.failure < 0.05
    assert hpc_ptr.failure > 0.15
    assert hpc_int.failure > 0.05
    assert hpc_ptr.failure > 3 * hpc_fp.failure + 0.10
    # graphics: single-bit faults are not user-noticeable SDC
    assert result.row("gpu_graphics", "fp").sdc < 0.15
    # CPU SDC is far below GPU HPC SDC
    gpu_sdc = np.mean([hpc_ptr.sdc, hpc_int.sdc, hpc_fp.sdc])
    cpu_sdc = np.mean(
        [result.row("cpu", s).sdc for s in ("stack", "data", "code")]
    )
    assert cpu_sdc < gpu_sdc / 2
