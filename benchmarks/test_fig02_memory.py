"""Figure 2 regenerator — memory footprint by data type.

Paper anchor: in the HPC FP programs, FP data occupies 3-6 orders of
magnitude more memory than integer + pointer data combined (at
paper-scale problem sizes); the suite's one integer program (SAD) is
integer-dominated instead.
"""

from repro.harness.fig02_memory import run_fig02
from repro.harness.reporting import format_table


def test_fig02_memory_by_type(benchmark, scale, report):
    result = benchmark.pedantic(run_fig02, args=(scale,), rounds=1, iterations=1)

    blocks = []
    for label, rows in (("paper-scale", result.paper_scale),
                        ("simulated", result.simulated)):
        blocks.append(format_table(
            f"Figure 2 - memory by data type ({label})",
            ["program type", "FP bytes", "int bytes", "ptr bytes",
             "FP dominance (orders of magnitude)"],
            [
                (r.group, f"{r.fp_bytes:.3g}", f"{r.int_bytes:.3g}",
                 f"{r.ptr_bytes:.3g}", f"{r.fp_dominance_orders:.2f}")
                for r in rows
            ],
        ))
    report("\n\n".join(blocks))

    paper = {r.group: r for r in result.paper_scale}
    assert paper["HPC FP programs"].fp_dominance_orders > 1.0
    assert paper["HPC integer program"].int_bytes > paper["HPC integer program"].fp_bytes
    assert paper["3D graphics programs"].fp_dominance_orders > 2.0
