"""Figure 15 regenerator — FP value change magnitude vs bits flipped.

Paper anchors: "regardless of an original value range, if the number
of corrupted bits increases, the portion for >1E+15 gradually
increases" — which is why even heavily alpha-loosened range detectors
keep catching multi-bit faults (Section IX.C).
"""

from repro.harness.fig15_bitflip import BIT_COUNTS, ORIGINAL_RANGES, run_fig15
from repro.harness.reporting import format_table, pct


def test_fig15_bitflip_magnitude(benchmark, scale, report):
    result = benchmark.pedantic(run_fig15, args=(scale,), rounds=1, iterations=1)

    rows = []
    for (range_label, bits), dist in result.cells.items():
        rows.append((
            range_label, bits,
            pct(dist.get(">1E+15", 0.0)),
            pct(dist.get("1E+9~1E+15", 0.0)),
            pct(dist.get("1E+3~1E+6", 0.0) + dist.get("1E+6~1E+9", 0.0)),
            pct(dist.get("1E-3~1E+3", 0.0)),
            pct(sum(v for k, v in dist.items()
                    if k in ("<1E-15", "1E-15~1E-9", "1E-9~1E-6", "1E-6~1E-3"))),
        ))
    report(format_table(
        "Figure 15 - magnitude of FP value change after fault",
        ["original range", "bits", ">1E15", "1E9-1E15", "1E3-1E9",
         "1E-3-1E3", "<1E-3"],
        rows,
    ))

    for range_label, _lo, _hi in ORIGINAL_RANGES:
        huge = [result.huge_change_fraction(range_label, b) for b in BIT_COUNTS]
        # the >1E+15 bucket grows monotonically with the bit count
        assert all(a <= b + 1e-9 for a, b in zip(huge, huge[1:])), range_label
    # large magnitudes almost always blow up
    assert result.huge_change_fraction("1E+15~1E+45", 15) > 0.95
    # even mid-range values change by >1e6 x a substantial fraction of
    # the time — the basis of Section IX.C's alpha insensitivity
    mid = result.cells[("1E-3~1E+3", 6)]
    big_change = sum(v for k, v in mid.items()
                     if k in (">1E+15", "1E+9~1E+15", "1E+6~1E+9"))
    assert big_change > 0.15
