"""Figure 9 regenerator — CP loop dependency scores and target selection.

Paper anchor: in the coulombic-potential loop, energyx2's cumulative
backward dataflow dependency exceeds energyx1's (13 vs 12 with the
paper's temporary counting) because dx2 derives from dx1, so the loop
detector protects energyx2.
"""

from repro.harness.fig09_dependency import run_fig09
from repro.harness.reporting import format_table


def test_fig09_dependency_selection(benchmark, scale, report):
    result = benchmark.pedantic(run_fig09, args=(scale,), rounds=1, iterations=1)

    report(format_table(
        "Figure 9 - cumulative backward dataflow dependency (CP loop)",
        ["variable", "CBD", "self-accumulating", "selected"],
        [
            (name, score, name in result.self_accumulating,
             name in result.selected)
            for name, score in sorted(result.scores.items(), key=lambda kv: -kv[1])
        ],
    ))

    assert result.scores["energyx2"] > result.scores["energyx1"]
    assert result.selected == ["energyx2"]
    # both energies are self-accumulating (why CP's detector is so cheap)
    assert {"energyx1", "energyx2"} <= set(result.self_accumulating)
    # the energies dominate every intermediate in the loop
    intermediates = {k: v for k, v in result.scores.items()
                     if k not in ("energyx1", "energyx2")}
    assert result.scores["energyx2"] > max(intermediates.values())
