"""Shared benchmark infrastructure.

Every file under ``benchmarks/`` regenerates one of the paper's tables
or figures (see DESIGN.md's per-experiment index).  Results are
printed to the live terminal (bypassing capture) and appended to
``bench_results/`` so ``pytest benchmarks/ --benchmark-only | tee ...``
records the full paper-vs-measured story.

Scale: set ``REPRO_BENCH_SCALE=smoke`` for a fast pass; the default
``campaign`` preset keeps the whole suite in the tens of minutes while
staying statistically meaningful.  ``REPRO_BENCH_WORKERS=N`` (or
``auto``) runs the campaign figures through the parallel execution
engine (``repro.swifi.parallel``).
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

import pytest

from repro.exec import resolve_workers
from repro.harness.config import SMOKE, ExperimentScale

#: Default benchmark scale: bigger than SMOKE, smaller than the paper's
#: 10,000-injections-per-app cluster campaigns.
CAMPAIGN = ExperimentScale(
    masks_per_site=3,
    max_targets=12,
    bit_counts=(1, 3, 6, 10, 15),
    training_seeds=(0, 1, 2),
    cpu_trials_per_segment=50,
    graphics_trials=18,
    fig15_samples=500_000,
    fig16_training_counts=(1, 3, 5, 7, 10, 18, 30, 50),
    fig16_eval_runs=6,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    preset = SMOKE \
        if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke" \
        else CAMPAIGN
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if raw:
        workers = resolve_workers(raw if raw == "auto" else int(raw))
        preset = dataclasses.replace(
            preset, campaign=preset.campaign.evolve(workers=workers)
        )
    return preset


@pytest.fixture
def report(capsys, request):
    """Emit a result block to the live terminal and bench_results/."""

    def emit(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{request.node.name}.txt"
        out.write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return emit
