"""Figure 3 regenerator — transient vs intermittent faults in graphics.

Paper anchors: a transient single-value fault makes an unnoticeable
spike in one frame (no SDC); an intermittent fault corrupting the
values every pixel reads forms a prominent pattern — a noticeable
corruption (Observation 3).
"""

from repro.harness.fig03_graphics import run_fig03
from repro.harness.reporting import format_table


def test_fig03_graphics_fault_impact(benchmark, scale, report):
    result = benchmark.pedantic(run_fig03, args=(scale,), rounds=1, iterations=1)

    report(format_table(
        "Figure 3 - fault impact on the ocean-flow frame",
        ["fault", "corrupted pixels", "fraction", "max dev (levels)", "noticeable"],
        [
            ("transient (1 value)", result.transient.corrupted_pixels,
             f"{result.transient.corrupted_fraction:.4f}",
             f"{result.transient.max_deviation_levels:.1f}",
             result.transient_noticeable),
            ("intermittent (stuck word)", result.intermittent.corrupted_pixels,
             f"{result.intermittent.corrupted_fraction:.4f}",
             f"{result.intermittent.max_deviation_levels:.1f}",
             result.intermittent_noticeable),
        ],
    ))

    assert not result.transient_noticeable
    assert result.intermittent_noticeable
    assert result.transient.corrupted_pixels <= 3
    assert result.intermittent.corrupted_fraction > 0.25
