"""Figure 13 regenerator — performance overhead of every technique.

Paper anchors: R-Naive ~100% on every benchmark; R-Scatter ~89%
average and *uncompilable* for TPACF (shared-memory doubling);
HAUBERK averages 15.3% (8.9% excluding RPES); PNS has the cheapest
loop detector (integer accumulator); RPES's overhead is dominated by
HAUBERK-NL duplicating its sequential preamble.
"""

from repro.harness.config import LOOPY, SMOKE
from repro.harness.fig13_overhead import run_fig13
from repro.harness.reporting import format_table


def test_fig13_overhead(benchmark, scale, report):
    use = SMOKE if scale is SMOKE else LOOPY
    result = benchmark.pedantic(run_fig13, args=(use,), rounds=1, iterations=1)

    rows = []
    for r in result.rows:
        rows.append((
            r.name, f"{r.rnaive:.1f}%",
            "no-compile" if r.rscatter is None else f"{r.rscatter:.1f}%",
            f"{r.hauberk_nl:.1f}%", f"{r.hauberk_l:.1f}%", f"{r.hauberk:.1f}%",
        ))
    avg = result.averages()
    rows.append(("AVG", f"{avg['rnaive']:.1f}%", f"{avg['rscatter']:.1f}%",
                 f"{avg['hauberk_nl']:.1f}%", f"{avg['hauberk_l']:.1f}%",
                 f"{avg['hauberk']:.1f}%"))
    rows.append(("AVG excl RPES", "", "", "", "",
                 f"{avg['hauberk_excl_rpes']:.1f}%"))
    report(format_table(
        "Figure 13 - performance overhead vs baseline",
        ["benchmark", "R-Naive", "R-Scatter", "HAUBERK-NL", "HAUBERK-L", "HAUBERK"],
        rows,
    ))

    # R-Naive doubles execution everywhere
    assert all(abs(r.rnaive - 100.0) < 2.0 for r in result.rows)
    # R-Scatter: near-duplication overhead, TPACF fails to compile
    assert result.row("TPACF").rscatter is None
    assert 70.0 < avg["rscatter"] < 110.0
    # HAUBERK: an order of magnitude cheaper than duplication
    assert avg["hauberk"] < 25.0
    assert avg["hauberk_excl_rpes"] < 15.0
    # per-program structure
    hk = {r.name: r.hauberk for r in result.rows}
    assert hk["PNS"] == min(v for n, v in hk.items())  # integer detector cheapest
    assert hk["RPES"] == max(hk.values())  # sequential-code outlier
    rpes = result.row("RPES")
    assert rpes.hauberk_nl > rpes.hauberk_l  # NL dominates RPES
