"""Device-memory micro-benchmarks — the typed NumPy backing store.

Measures the operations the whole campaign stack leans on, old vs new,
in one process:

* **scalar load/store** — per-word typed access through the zero-copy
  dtype views vs the legacy ``List[int]`` + ``struct`` reinterpretation
  (the kernel interpreter's hot path);
* **snapshot / restore** — whole-state checkpointing (differential
  golden recording, guardian checkpoints);
* **golden-diff** — counting words that deviate from a golden snapshot
  (SDC classification, deferred-store verdicts).

The "old" numbers come from a faithful in-file shim of the previous
``List[int]`` implementation, so both sides run on the same
interpreter and machine and the recorded ratios are honest.  Snapshot,
restore, and golden-diff must each clear **5x**; results land in
``BENCH_memory.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import List

import numpy as np

from repro.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits
from repro.gpu.memory import GlobalMemory
from repro.harness.reporting import format_table
from repro.kir.types import DType

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class _LegacyMemory:
    """The pre-refactor backing store: ``List[int]`` words + struct codecs.

    Mirrors the old ``GlobalMemory`` operations measured here (bounds
    checks included) so the old-vs-new ratios compare like for like.
    """

    def __init__(self, capacity_words: int):
        self.capacity = capacity_words
        self.words: List[int] = [0] * capacity_words
        self._brk = capacity_words

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            return bits_to_float(self.words[addr])
        raise IndexError(addr)

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return bits_to_int(self.words[addr])
        raise IndexError(addr)

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = float_to_bits(value)
            return
        raise IndexError(addr)

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = int_to_bits(value)
            return
        raise IndexError(addr)

    def snapshot(self) -> List[int]:
        return self.words[: self._brk]

    def restore(self, words: List[int]) -> None:
        self.words[: self._brk] = words


def _best_seconds(fn, repeats: int = 5) -> float:
    """Best-of-N wall time of ``fn()`` (min is robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_op_ns(fn_once, n_ops: int, repeats: int = 5) -> float:
    return _best_seconds(fn_once, repeats) / n_ops * 1e9


def test_memory_ops(scale, report):
    smoke = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"
    nwords = 1 << 16 if smoke else 1 << 18
    n_scalar = 20_000 if smoke else 100_000

    rng = np.random.default_rng(1234)
    pattern = rng.integers(0, 1 << 32, size=nwords, dtype=np.uint32)

    new = GlobalMemory(capacity_words=nwords)
    new.alloc("state", nwords, DType.FLOAT32)
    new.words[:] = pattern
    old = _LegacyMemory(nwords)
    old.words[:] = [int(b) for b in pattern]

    results = {}

    # -- scalar typed access (the interpreter's hot path) -----------------
    addrs = [int(a) for a in rng.integers(0, nwords, size=n_scalar)]
    values = [float(v) for v in rng.normal(size=n_scalar)]

    def scalar_loads(mem):
        load = mem.load_f32
        def run():
            for a in addrs:
                load(a)
        return run

    def scalar_stores(mem):
        store = mem.store_f32
        pairs = list(zip(addrs, values))
        def run():
            for a, v in pairs:
                store(a, v)
        return run

    results["load_f32"] = {
        "old_ns_per_op": round(_per_op_ns(scalar_loads(old), n_scalar), 1),
        "new_ns_per_op": round(_per_op_ns(scalar_loads(new), n_scalar), 1),
    }
    results["store_f32"] = {
        "old_ns_per_op": round(_per_op_ns(scalar_stores(old), n_scalar), 1),
        "new_ns_per_op": round(_per_op_ns(scalar_stores(new), n_scalar), 1),
    }
    new.words[:] = pattern  # undo the random stores
    old.words[:] = [int(b) for b in pattern]

    # -- snapshot / restore ------------------------------------------------
    old_snap = old.snapshot()
    new_snap = new.snapshot()
    results["snapshot"] = {
        "old_seconds": _best_seconds(lambda: old.snapshot()),
        "new_seconds": _best_seconds(lambda: new.snapshot()),
    }
    results["restore"] = {
        "old_seconds": _best_seconds(lambda: old.restore(old_snap)),
        "new_seconds": _best_seconds(lambda: new.restore(new_snap)),
    }

    # -- golden-diff: count words deviating from the golden snapshot ------
    corrupt = rng.integers(0, nwords, size=max(nwords // 1000, 8))
    new.words[corrupt] ^= 1 << 20
    for a in corrupt:
        old.words[int(a)] ^= 1 << 20

    def old_diff() -> int:
        return sum(1 for a, b in zip(old.words, old_snap) if a != b)

    def new_diff() -> int:
        return int(np.count_nonzero(new.words[: nwords] != new_snap))

    assert old_diff() == new_diff() > 0  # both sides agree before timing
    results["golden_diff"] = {
        "old_seconds": _best_seconds(old_diff),
        "new_seconds": _best_seconds(new_diff),
    }

    rows = []
    for op in ("snapshot", "restore", "golden_diff"):
        entry = results[op]
        speedup = entry["old_seconds"] / max(entry["new_seconds"], 1e-9)
        entry["speedup"] = round(speedup, 1)
        entry["old_seconds"] = round(entry["old_seconds"], 6)
        entry["new_seconds"] = round(entry["new_seconds"], 6)
        rows.append((op, f"{entry['old_seconds'] * 1e3:.3f}ms",
                     f"{entry['new_seconds'] * 1e3:.3f}ms",
                     f"{entry['speedup']:.1f}x"))
    for op in ("load_f32", "store_f32"):
        entry = results[op]
        entry["speedup"] = round(
            entry["old_ns_per_op"] / max(entry["new_ns_per_op"], 1e-9), 2
        )
        rows.append((op, f"{entry['old_ns_per_op']:.0f}ns",
                     f"{entry['new_ns_per_op']:.0f}ns",
                     f"{entry['speedup']:.2f}x"))

    payload = {
        "benchmark": "memory_ops",
        "nwords": nwords,
        "scalar_ops": n_scalar,
        "cpu_count": os.cpu_count(),
        "operations": results,
    }
    (REPO_ROOT / "BENCH_memory.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report(format_table(
        f"Device-memory operations - {nwords} words",
        ["operation", "old (List[int])", "new (uint32 ndarray)", "speedup"],
        rows,
    ))

    # the refactor's reason to exist: whole-state ops are vectorized
    for op in ("snapshot", "restore", "golden_diff"):
        assert results[op]["speedup"] >= 5.0, \
            f"{op} speedup {results[op]['speedup']}x below the 5x floor"
    # scalar accessors must not regress (the interpreter hot path)
    for op in ("load_f32", "store_f32"):
        assert results[op]["speedup"] >= 1.0, \
            f"{op} slower than the legacy struct path"
