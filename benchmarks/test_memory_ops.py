"""Device-memory micro-benchmarks — the typed NumPy backing store.

Measures the operations the whole campaign stack leans on, old vs new,
in one process:

* **scalar load/store** — per-word typed access through the zero-copy
  dtype views vs the legacy ``List[int]`` + ``struct`` reinterpretation
  (the kernel interpreter's hot path);
* **snapshot / restore** — whole-state checkpointing (differential
  golden recording, guardian checkpoints);
* **golden-diff** — counting words that deviate from a golden snapshot
  (SDC classification, deferred-store verdicts).

The "old" numbers come from a faithful in-file shim of the previous
``List[int]`` implementation, so both sides run on the same
interpreter and machine and the recorded ratios are honest.  Snapshot,
restore, and golden-diff must each clear **5x**; results land in
``BENCH_memory.json`` at the repo root.

The **paged** section measures the same lifecycle at a GB-scale
*sparse* footprint: a 2^28-word (1 GB) address space with a few
thousand touched words, dense ndarray vs sparse paged backing on the
same machine.  Snapshot/restore are O(resident pages) vs O(footprint)
copies and golden-diff is page-granular vs a full-array compare, so
the ratios grow with sparseness; ``resident_ratio`` records how many
addressable bytes each resident byte carries.  The dense section is
untouched — its 5x floors still gate the PR-5 wins.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import List

import numpy as np

from repro.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits
from repro.gpu.memory import GlobalMemory, PagedGlobalMemory
from repro.harness.reporting import format_table
from repro.kir.types import DType

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class _LegacyMemory:
    """The pre-refactor backing store: ``List[int]`` words + struct codecs.

    Mirrors the old ``GlobalMemory`` operations measured here (bounds
    checks included) so the old-vs-new ratios compare like for like.
    """

    def __init__(self, capacity_words: int):
        self.capacity = capacity_words
        self.words: List[int] = [0] * capacity_words
        self._brk = capacity_words

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            return bits_to_float(self.words[addr])
        raise IndexError(addr)

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return bits_to_int(self.words[addr])
        raise IndexError(addr)

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = float_to_bits(value)
            return
        raise IndexError(addr)

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = int_to_bits(value)
            return
        raise IndexError(addr)

    def snapshot(self) -> List[int]:
        return self.words[: self._brk]

    def restore(self, words: List[int]) -> None:
        self.words[: self._brk] = words


def _best_seconds(fn, repeats: int = 5) -> float:
    """Best-of-N wall time of ``fn()`` (min is robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_op_ns(fn_once, n_ops: int, repeats: int = 5) -> float:
    return _best_seconds(fn_once, repeats) / n_ops * 1e9


def _paged_section(smoke: bool) -> dict:
    """Dense vs sparse-paged lifecycle at a GB-scale sparse footprint.

    Both backings hold the identical sparse content (a strided touch
    set over the full address space), so every timed operation does
    the same logical work; only the backing differs.  Smoke scale
    drops to a 2^26-word footprint so the dense comparator fits CI.
    """
    footprint = 1 << 26 if smoke else 1 << 28
    page_words = 1 << 10
    stride = footprint // 2048  # 2048 touched words, one per page span
    touch = np.arange(0, footprint, stride, dtype=np.int64)
    pattern = np.random.default_rng(99).integers(
        1, 1 << 32, size=touch.size, dtype=np.uint32)

    dense = GlobalMemory(footprint)
    dense.alloc("state", footprint, DType.FLOAT32)
    paged = PagedGlobalMemory(footprint, page_words=page_words)
    paged.alloc("state", footprint, DType.FLOAT32)
    for mem in (dense, paged):
        mem.scatter_words(touch, pattern)

    results = {
        "footprint_words": footprint,
        "touched_words": int(touch.size),
        "page_words": page_words,
        "resident_pages": paged.resident_pages,
        "resident_bytes": paged.resident_bytes,
        "resident_ratio": round(footprint * 4 / paged.resident_bytes, 1),
    }

    dense_snap = dense.snapshot()
    paged_snap = paged.snapshot()
    results["snapshot"] = {
        "dense_seconds": _best_seconds(lambda: dense.snapshot()),
        "paged_seconds": _best_seconds(lambda: paged.snapshot()),
    }
    results["restore"] = {
        "dense_seconds": _best_seconds(lambda: dense.restore(dense_snap)),
        "paged_seconds": _best_seconds(lambda: paged.restore(paged_snap)),
    }

    corrupt = touch[:: 16]
    for mem in (dense, paged):
        mem.scatter_words(corrupt, mem.gather_words(corrupt) ^ (1 << 20))
    d_count = dense.golden_diff(dense_snap)
    p_count = paged.golden_diff(paged_snap)
    assert d_count == p_count == corrupt.size  # same logical work
    results["golden_diff"] = {
        "dense_seconds": _best_seconds(lambda: dense.golden_diff(dense_snap)),
        "paged_seconds": _best_seconds(lambda: paged.golden_diff(paged_snap)),
    }
    # content digests agree across backings after restoring golden
    dense.restore(dense_snap)
    paged.restore(paged_snap)
    results["digest_seconds"] = round(_best_seconds(paged.digest, repeats=3), 6)
    assert dense.digest() == paged.digest()

    for op in ("snapshot", "restore", "golden_diff"):
        entry = results[op]
        entry["speedup_vs_dense"] = round(
            entry["dense_seconds"] / max(entry["paged_seconds"], 1e-9), 1)
        entry["dense_seconds"] = round(entry["dense_seconds"], 6)
        entry["paged_seconds"] = round(entry["paged_seconds"], 6)
    return results


def test_memory_ops(scale, report):
    smoke = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "smoke"
    nwords = 1 << 16 if smoke else 1 << 18
    n_scalar = 20_000 if smoke else 100_000

    rng = np.random.default_rng(1234)
    pattern = rng.integers(0, 1 << 32, size=nwords, dtype=np.uint32)

    new = GlobalMemory(capacity_words=nwords)
    new.alloc("state", nwords, DType.FLOAT32)
    new.words[:] = pattern
    old = _LegacyMemory(nwords)
    old.words[:] = [int(b) for b in pattern]

    results = {}

    # -- scalar typed access (the interpreter's hot path) -----------------
    addrs = [int(a) for a in rng.integers(0, nwords, size=n_scalar)]
    values = [float(v) for v in rng.normal(size=n_scalar)]

    def scalar_loads(mem):
        load = mem.load_f32
        def run():
            for a in addrs:
                load(a)
        return run

    def scalar_stores(mem):
        store = mem.store_f32
        pairs = list(zip(addrs, values))
        def run():
            for a, v in pairs:
                store(a, v)
        return run

    results["load_f32"] = {
        "old_ns_per_op": round(_per_op_ns(scalar_loads(old), n_scalar), 1),
        "new_ns_per_op": round(_per_op_ns(scalar_loads(new), n_scalar), 1),
    }
    results["store_f32"] = {
        "old_ns_per_op": round(_per_op_ns(scalar_stores(old), n_scalar), 1),
        "new_ns_per_op": round(_per_op_ns(scalar_stores(new), n_scalar), 1),
    }
    new.words[:] = pattern  # undo the random stores
    old.words[:] = [int(b) for b in pattern]

    # -- snapshot / restore ------------------------------------------------
    old_snap = old.snapshot()
    new_snap = new.snapshot()
    results["snapshot"] = {
        "old_seconds": _best_seconds(lambda: old.snapshot()),
        "new_seconds": _best_seconds(lambda: new.snapshot()),
    }
    results["restore"] = {
        "old_seconds": _best_seconds(lambda: old.restore(old_snap)),
        "new_seconds": _best_seconds(lambda: new.restore(new_snap)),
    }

    # -- golden-diff: count words deviating from the golden snapshot ------
    corrupt = rng.integers(0, nwords, size=max(nwords // 1000, 8))
    new.words[corrupt] ^= 1 << 20
    for a in corrupt:
        old.words[int(a)] ^= 1 << 20

    def old_diff() -> int:
        return sum(1 for a, b in zip(old.words, old_snap) if a != b)

    def new_diff() -> int:
        return int(np.count_nonzero(new.words[: nwords] != new_snap))

    assert old_diff() == new_diff() > 0  # both sides agree before timing
    results["golden_diff"] = {
        "old_seconds": _best_seconds(old_diff),
        "new_seconds": _best_seconds(new_diff),
    }

    rows = []
    for op in ("snapshot", "restore", "golden_diff"):
        entry = results[op]
        speedup = entry["old_seconds"] / max(entry["new_seconds"], 1e-9)
        entry["speedup"] = round(speedup, 1)
        entry["old_seconds"] = round(entry["old_seconds"], 6)
        entry["new_seconds"] = round(entry["new_seconds"], 6)
        rows.append((op, f"{entry['old_seconds'] * 1e3:.3f}ms",
                     f"{entry['new_seconds'] * 1e3:.3f}ms",
                     f"{entry['speedup']:.1f}x"))
    for op in ("load_f32", "store_f32"):
        entry = results[op]
        entry["speedup"] = round(
            entry["old_ns_per_op"] / max(entry["new_ns_per_op"], 1e-9), 2
        )
        rows.append((op, f"{entry['old_ns_per_op']:.0f}ns",
                     f"{entry['new_ns_per_op']:.0f}ns",
                     f"{entry['speedup']:.2f}x"))

    # -- GB-scale sparse footprint: dense ndarray vs paged backing --------
    paged = _paged_section(smoke)

    payload = {
        "benchmark": "memory_ops",
        "nwords": nwords,
        "scalar_ops": n_scalar,
        "cpu_count": os.cpu_count(),
        "operations": results,
        "paged": paged,
    }
    (REPO_ROOT / "BENCH_memory.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report(format_table(
        f"Device-memory operations - {nwords} words",
        ["operation", "old (List[int])", "new (uint32 ndarray)", "speedup"],
        rows,
    ))
    report(format_table(
        f"Sparse paged backing - {paged['footprint_words']} addressable words"
        f" ({paged['touched_words']} touched,"
        f" {paged['resident_ratio']:.0f}x resident ratio)",
        ["operation", "dense ndarray", "paged store", "speedup"],
        [
            (op, f"{paged[op]['dense_seconds'] * 1e3:.3f}ms",
             f"{paged[op]['paged_seconds'] * 1e3:.3f}ms",
             f"{paged[op]['speedup_vs_dense']:.1f}x")
            for op in ("snapshot", "restore", "golden_diff")
        ],
    ))

    # the refactor's reason to exist: whole-state ops are vectorized
    for op in ("snapshot", "restore", "golden_diff"):
        assert results[op]["speedup"] >= 5.0, \
            f"{op} speedup {results[op]['speedup']}x below the 5x floor"
    # scalar accessors must not regress (the interpreter hot path)
    for op in ("load_f32", "store_f32"):
        assert results[op]["speedup"] >= 1.0, \
            f"{op} slower than the legacy struct path"
    # the paged tier's reason to exist: lifecycle cost follows the
    # touched pages, not the addressable footprint
    for op in ("snapshot", "restore", "golden_diff"):
        assert paged[op]["speedup_vs_dense"] >= 5.0, \
            f"paged {op} only {paged[op]['speedup_vs_dense']}x vs dense"
    assert paged["resident_ratio"] >= 16.0, \
        f"resident ratio {paged['resident_ratio']}x below the 16x floor"
