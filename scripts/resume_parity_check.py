#!/usr/bin/env python
"""End-to-end resume-parity check: SIGKILL a campaign, resume, compare.

The unit tests simulate interruption by truncating the journal; this
script performs the real experiment CI runs:

1. spawn a child process running a journaled campaign
   (``CampaignOptions(run_dir=...)``) over a small but non-trivial
   workload;
2. poll the journal and ``SIGKILL`` the child mid-campaign — no atexit,
   no flush-on-close, exactly the failure the journal exists for;
3. resume the campaign in this process (``CampaignOptions(resume=...)``)
   and assert the result is bit-identical to an uninterrupted run.

Exit status 0 on parity, 1 on any mismatch.  Usage::

    PYTHONPATH=src python scripts/resume_parity_check.py
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.core.program import HauberkProgram
from repro.kir.types import DType
from repro.swifi import CampaignOptions, build_fault_specs, enumerate_targets, run_campaign
from repro.workloads.base import BufferSpec, Workload, WorkloadInput

KERNEL_SRC = """
kernel parity(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        float v = data[i] * 1.0009765625 + float(tid);
        acc = acc + v * v;
    }
    out[tid] = acc;
}
"""

N_DATA = 96
N_THREADS = 8
MASKS_PER_SITE = 6
KILL_AFTER_RECORDS = 8
KILL_DEADLINE_S = 120.0


class ParityWorkload(Workload):
    """Small looped workload: slow enough to kill mid-campaign."""

    name = "PARITY"
    source = KERNEL_SRC

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 7)
        data = rng.uniform(0.5, 2.0, N_DATA).astype(np.float32)
        return WorkloadInput(
            buffers=[
                BufferSpec("data", DType.FLOAT32, N_DATA, data),
                BufferSpec("out", DType.FLOAT32, N_THREADS,
                           np.zeros(N_THREADS, dtype=np.float32)),
            ],
            scalars={"n": N_DATA},
            buffer_params={"data": "data", "out": "out"},
            outputs=["out"],
            grid=(1, 1),
            block=(N_THREADS, 1),
            meta={"data": data},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        data = inp.meta["data"].astype(np.float64)
        tids = np.arange(N_THREADS, dtype=np.float64)
        vals = data[None, :].astype(np.float32) * np.float32(1.0009765625)
        vals = (vals.astype(np.float64) + tids[:, None])
        return (vals * vals).sum(axis=1).astype(np.float32).astype(np.float64)


def _specs():
    wl = ParityWorkload()
    inp = wl.generate_input(0)
    return wl, build_fault_specs(
        enumerate_targets(wl.kernel),
        n_threads=inp.n_threads,
        masks_per_site=MASKS_PER_SITE,
        bit_counts=(1, 3),
        seed=11,
    )


def _options(**overrides) -> CampaignOptions:
    return CampaignOptions(workers=1, **overrides)


def _journal_path(root: str) -> str | None:
    if not os.path.isdir(root):
        return None
    for entry in sorted(os.listdir(root)):
        path = os.path.join(root, entry, "journal.jsonl")
        if os.path.exists(path):
            return path
    return None


def _journal_lines(root: str) -> int:
    path = _journal_path(root)
    if path is None:
        return 0
    with open(path, "rb") as fh:
        return fh.read().count(b"\n")


def run_child(root: str) -> int:
    """Child mode: run the journaled campaign to completion (if allowed)."""
    wl, specs = _specs()
    run_campaign(HauberkProgram(wl), specs, mode="fi",
                 options=_options(run_dir=root))
    return 0


def run_check(root: str) -> int:
    wl, specs = _specs()
    print(f"[parity] campaign plan: {len(specs)} specs")

    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", root],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in ("src", os.environ.get("PYTHONPATH", "")) if p)},
    )
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        if _journal_lines(root) >= KILL_AFTER_RECORDS:
            child.send_signal(signal.SIGKILL)
            child.wait()
            break
        time.sleep(0.05)
    else:
        child.kill()
        child.wait()
        print("[parity] FAIL: child produced no journal records in time")
        return 1

    journaled = _journal_lines(root)
    if child.returncode == 0:
        print(f"[parity] WARNING: child finished before the kill "
              f"({journaled} records); resume degenerates to full replay")
    else:
        print(f"[parity] child SIGKILLed with {journaled}/{len(specs)} "
              f"records journaled (exit {child.returncode})")
    if journaled == 0:
        print("[parity] FAIL: no durable records survived the kill")
        return 1

    resumed = run_campaign(HauberkProgram(ParityWorkload()), specs, mode="fi",
                           options=_options(resume=root))
    baseline = run_campaign(HauberkProgram(ParityWorkload()), specs,
                            mode="fi", options=_options())

    failures = []
    if resumed.summary() != baseline.summary():
        failures.append(f"summary mismatch:\n  resumed:  "
                        f"{resumed.summary()}\n  baseline: "
                        f"{baseline.summary()}")
    for i, (a, b) in enumerate(zip(resumed.trials, baseline.trials)):
        if a.outcome != b.outcome or a.observation != b.observation \
                or a.spec != b.spec:
            failures.append(f"trial {i} mismatch: {a} != {b}")
    if len(resumed.trials) != len(baseline.trials):
        failures.append(f"trial count {len(resumed.trials)} != "
                        f"{len(baseline.trials)}")

    if failures:
        print("[parity] FAIL: killed-and-resumed differs from uninterrupted")
        for failure in failures[:10]:
            print(f"[parity]   {failure}")
        return 1
    print(f"[parity] OK: resumed campaign ({journaled} replayed + "
          f"{len(specs) - journaled} re-executed trials) is bit-identical "
          f"to the uninterrupted run")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", metavar="ROOT",
                        help="(internal) run the journaled campaign child")
    parser.add_argument("--root", metavar="DIR",
                        help="journal root (default: a fresh temp dir)")
    args = parser.parse_args()
    if args.child:
        return run_child(args.child)
    if args.root:
        return run_check(args.root)
    with tempfile.TemporaryDirectory(prefix="resume-parity-") as root:
        return run_check(root)


if __name__ == "__main__":
    raise SystemExit(main())
