#!/usr/bin/env python
"""End-to-end resume-parity check: SIGKILL a campaign, resume, compare.

The unit tests simulate interruption by truncating the journal; this
script performs the real experiment CI runs:

1. spawn a child process running a journaled campaign
   (``CampaignOptions(run_dir=...)``) over a small but non-trivial
   workload;
2. poll the journal and ``SIGKILL`` the child mid-campaign — no atexit,
   no flush-on-close, exactly the failure the journal exists for;
3. resume the campaign in this process (``CampaignOptions(resume=...)``)
   and assert the result is bit-identical to an uninterrupted run.

With ``--fleet`` the victim is a whole fleet instead: a ``repro serve``
coordinator (plus its spawned worker) takes a submitted campaign, the
entire process group is SIGKILLed mid-run, and a second
``repro serve --resume`` must finish the run bit-identically to a
single-process ``workers=1`` baseline.

Exit status 0 on parity, 1 on any mismatch.  Usage::

    PYTHONPATH=src python scripts/resume_parity_check.py
    PYTHONPATH=src python scripts/resume_parity_check.py --fleet
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from repro.core.program import HauberkProgram
from repro.kir.types import DType
from repro.swifi import CampaignOptions, build_fault_specs, enumerate_targets, run_campaign
from repro.workloads.base import BufferSpec, Workload, WorkloadInput

KERNEL_SRC = """
kernel parity(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        float v = data[i] * 1.0009765625 + float(tid);
        acc = acc + v * v;
    }
    out[tid] = acc;
}
"""

N_DATA = 96
N_THREADS = 8
MASKS_PER_SITE = 6
KILL_AFTER_RECORDS = 8
KILL_DEADLINE_S = 120.0


class ParityWorkload(Workload):
    """Small looped workload: slow enough to kill mid-campaign."""

    name = "PARITY"
    source = KERNEL_SRC

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 7)
        data = rng.uniform(0.5, 2.0, N_DATA).astype(np.float32)
        return WorkloadInput(
            buffers=[
                BufferSpec("data", DType.FLOAT32, N_DATA, data),
                BufferSpec("out", DType.FLOAT32, N_THREADS,
                           np.zeros(N_THREADS, dtype=np.float32)),
            ],
            scalars={"n": N_DATA},
            buffer_params={"data": "data", "out": "out"},
            outputs=["out"],
            grid=(1, 1),
            block=(N_THREADS, 1),
            meta={"data": data},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        data = inp.meta["data"].astype(np.float64)
        tids = np.arange(N_THREADS, dtype=np.float64)
        vals = data[None, :].astype(np.float32) * np.float32(1.0009765625)
        vals = (vals.astype(np.float64) + tids[:, None])
        return (vals * vals).sum(axis=1).astype(np.float32).astype(np.float64)


def _specs():
    wl = ParityWorkload()
    inp = wl.generate_input(0)
    return wl, build_fault_specs(
        enumerate_targets(wl.kernel),
        n_threads=inp.n_threads,
        masks_per_site=MASKS_PER_SITE,
        bit_counts=(1, 3),
        seed=11,
    )


def _options(**overrides) -> CampaignOptions:
    return CampaignOptions(workers=1, **overrides)


def _journal_path(root: str) -> str | None:
    if not os.path.isdir(root):
        return None
    for entry in sorted(os.listdir(root)):
        path = os.path.join(root, entry, "journal.jsonl")
        if os.path.exists(path):
            return path
    return None


def _journal_lines(root: str) -> int:
    path = _journal_path(root)
    if path is None:
        return 0
    with open(path, "rb") as fh:
        return fh.read().count(b"\n")


def run_child(root: str) -> int:
    """Child mode: run the journaled campaign to completion (if allowed)."""
    wl, specs = _specs()
    run_campaign(HauberkProgram(wl), specs, mode="fi",
                 options=_options(run_dir=root))
    return 0


def run_check(root: str) -> int:
    wl, specs = _specs()
    print(f"[parity] campaign plan: {len(specs)} specs")

    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", root],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in ("src", os.environ.get("PYTHONPATH", "")) if p)},
    )
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        if _journal_lines(root) >= KILL_AFTER_RECORDS:
            child.send_signal(signal.SIGKILL)
            child.wait()
            break
        time.sleep(0.05)
    else:
        child.kill()
        child.wait()
        print("[parity] FAIL: child produced no journal records in time")
        return 1

    journaled = _journal_lines(root)
    if child.returncode == 0:
        print(f"[parity] WARNING: child finished before the kill "
              f"({journaled} records); resume degenerates to full replay")
    else:
        print(f"[parity] child SIGKILLed with {journaled}/{len(specs)} "
              f"records journaled (exit {child.returncode})")
    if journaled == 0:
        print("[parity] FAIL: no durable records survived the kill")
        return 1

    resumed = run_campaign(HauberkProgram(ParityWorkload()), specs, mode="fi",
                           options=_options(resume=root))
    baseline = run_campaign(HauberkProgram(ParityWorkload()), specs,
                            mode="fi", options=_options())

    failures = []
    if resumed.summary() != baseline.summary():
        failures.append(f"summary mismatch:\n  resumed:  "
                        f"{resumed.summary()}\n  baseline: "
                        f"{baseline.summary()}")
    for i, (a, b) in enumerate(zip(resumed.trials, baseline.trials)):
        if a.outcome != b.outcome or a.observation != b.observation \
                or a.spec != b.spec:
            failures.append(f"trial {i} mismatch: {a} != {b}")
    if len(resumed.trials) != len(baseline.trials):
        failures.append(f"trial count {len(resumed.trials)} != "
                        f"{len(baseline.trials)}")

    if failures:
        print("[parity] FAIL: killed-and-resumed differs from uninterrupted")
        for failure in failures[:10]:
            print(f"[parity]   {failure}")
        return 1
    print(f"[parity] OK: resumed campaign ({journaled} replayed + "
          f"{len(specs) - journaled} re-executed trials) is bit-identical "
          f"to the uninterrupted run")
    return 0


# -- fleet mode: SIGKILL the coordinator ------------------------------------

FLEET_MAX_SPECS = 120
FLEET_LEASE_TTL = 5.0
_ANNOUNCE_RE = re.compile(r"serving on ([0-9A-Za-z_.:\-]+:\d+)\]")


def _spawn_serve(root: str, resume: bool) -> subprocess.Popen:
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", "0", "--fleet", "1",
        "--run-dir", root, "--lease-ttl", str(FLEET_LEASE_TTL),
    ]
    if resume:
        argv += ["--resume", "--max-runs", "1"]
    return subprocess.Popen(
        argv,
        stderr=subprocess.PIPE,
        start_new_session=True,  # killpg reaches the worker too
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in ("src", os.environ.get("PYTHONPATH", "")) if p)},
    )


def _serve_endpoint(proc: subprocess.Popen, deadline_s: float = 60.0) -> str:
    """The endpoint from the coordinator's stderr announce line."""
    found: list = []
    ready = threading.Event()

    def scan() -> None:
        for raw in proc.stderr:
            line = raw.decode("utf-8", "replace")
            match = _ANNOUNCE_RE.search(line)
            if match and not found:
                found.append(match.group(1))
                ready.set()
        ready.set()  # EOF: serve died before announcing

    threading.Thread(target=scan, daemon=True).start()
    ready.wait(deadline_s)
    if not found:
        raise RuntimeError("repro serve never announced its endpoint")
    return found[0]


def _fleet_campaign():
    from repro.fleet import ProgramRecipe, envelope_for

    recipe = ProgramRecipe(workload="CP")
    program = recipe.build_program()
    inp = program.workload.generate_input(0)
    specs = build_fault_specs(
        enumerate_targets(program.workload.kernel),
        n_threads=inp.n_threads,
        masks_per_site=MASKS_PER_SITE,
        bit_counts=(1, 3),
        seed=11,
    )[:FLEET_MAX_SPECS]
    options = CampaignOptions(seed=0)
    return recipe, specs, envelope_for(program, specs, "fi", options), options


def run_fleet_check(root: str) -> int:
    from repro.fleet import FleetClient, rebuild_result

    recipe, specs, envelope, options = _fleet_campaign()
    print(f"[parity/fleet] campaign plan: {len(specs)} specs")

    serve = _spawn_serve(root, resume=False)
    try:
        endpoint = _serve_endpoint(serve)
        print(f"[parity/fleet] coordinator up at {endpoint}")
        with FleetClient(endpoint, timeout=30.0) as client:
            run_id = client.submit(envelope, chunk_size=1)
        print(f"[parity/fleet] submitted {run_id}")

        deadline = time.monotonic() + KILL_DEADLINE_S
        while time.monotonic() < deadline:
            if serve.poll() is not None:
                break
            if _journal_lines(root) >= KILL_AFTER_RECORDS:
                break
            time.sleep(0.02)
        else:
            print("[parity/fleet] FAIL: no journal records in time")
            return 1
    finally:
        # SIGKILL coordinator *and* its spawned worker: nobody flushes
        try:
            os.killpg(serve.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        serve.wait()

    journaled = _journal_lines(root)
    print(f"[parity/fleet] fleet SIGKILLed with {journaled}/{len(specs)} "
          f"records journaled")
    if journaled == 0:
        print("[parity/fleet] FAIL: no durable records survived the kill")
        return 1

    resumed_serve = _spawn_serve(root, resume=True)
    try:
        endpoint = _serve_endpoint(resumed_serve)
        print(f"[parity/fleet] resumed coordinator up at {endpoint}")
        with FleetClient(endpoint, timeout=30.0) as client:
            run_id = client.submit(envelope, chunk_size=1)
            done = client.wait(run_id, timeout=KILL_DEADLINE_S)
        resumed = rebuild_result(specs, done)
        resumed_serve.wait(timeout=30)  # --max-runs 1: exits on its own
    finally:
        try:
            os.killpg(resumed_serve.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        resumed_serve.wait()

    baseline = run_campaign(recipe.build_program(), specs, mode="fi",
                            options=_options(seed=options.seed))

    failures = []
    if resumed.summary() != baseline.summary():
        failures.append(f"summary mismatch:\n  resumed:  "
                        f"{resumed.summary()}\n  baseline: "
                        f"{baseline.summary()}")
    for i, (a, b) in enumerate(zip(resumed.trials, baseline.trials)):
        if a.outcome != b.outcome or a.observation != b.observation \
                or a.spec != b.spec:
            failures.append(f"trial {i} mismatch: {a} != {b}")
    if len(resumed.trials) != len(baseline.trials):
        failures.append(f"trial count {len(resumed.trials)} != "
                        f"{len(baseline.trials)}")

    if failures:
        print("[parity/fleet] FAIL: killed-and-resumed fleet differs from "
              "workers=1")
        for failure in failures[:10]:
            print(f"[parity/fleet]   {failure}")
        return 1
    print(f"[parity/fleet] OK: resumed fleet run ({journaled} replayed + "
          f"{len(specs) - journaled} re-executed trials) is bit-identical "
          f"to workers=1")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", metavar="ROOT",
                        help="(internal) run the journaled campaign child")
    parser.add_argument("--root", metavar="DIR",
                        help="journal root (default: a fresh temp dir)")
    parser.add_argument("--fleet", action="store_true",
                        help="SIGKILL a repro serve coordinator instead")
    args = parser.parse_args()
    if args.child:
        return run_child(args.child)
    check = run_fleet_check if args.fleet else run_check
    if args.root:
        return check(args.root)
    with tempfile.TemporaryDirectory(prefix="resume-parity-") as root:
        return check(root)


if __name__ == "__main__":
    raise SystemExit(main())
