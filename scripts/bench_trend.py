#!/usr/bin/env python
"""Benchmark trend tracking: append snapshots, fail on regressions.

The benchmark suites write point-in-time payloads (``BENCH_campaign.json``,
``BENCH_memory.json``, ``BENCH_planner.json``) at the repo root and
overwrite them on every run,
so a perf regression is invisible unless someone diffs by hand.  This
script closes that loop:

* **append** — each invocation appends the current payloads as one
  JSON line per file under ``bench_results/`` (``campaign.trend.jsonl``
  / ``memory.trend.jsonl``), building a local history.
* **baseline** — ``--record`` stores the current payloads as the
  comparison baseline (``bench_results/baseline_campaign.json`` /
  ``baseline_memory.json``).
* **check** — without ``--record``, every tracked metric is compared
  against the baseline; any metric that regressed by more than the
  threshold (default 20%) fails the run with exit code 1
  (``--no-fail`` reports but exits 0).

Tracked metrics are ratios/rates where more is better
(``trials_per_sec``, ``speedup*``, the planner's ``trials_saved_ratio``
and ``reuse_ratio``, the paged store's ``resident_ratio``) plus the
profiler ``overhead`` where less is better.  Absolute wall times are *not* compared — they
shift with the host; the ratios are what the paper's claims rest on.

Payloads that record a ``scale`` preset are only compared against a
baseline recorded at the *same* preset: a ``smoke`` payload checked
against a ``campaign`` baseline (or vice versa) produces phantom
regressions from the differing trial counts and grid sizes, not from
any code change — exactly the failure mode that once flagged the CP
differential campaign as 3x slower when only the preset had changed.
Mismatched scales skip the check with an explanatory note.

Usage::

    python scripts/bench_trend.py --record      # set today's baseline
    python scripts/bench_trend.py               # append + check vs baseline
    python scripts/bench_trend.py --threshold 0.1 --no-fail
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Bench payloads tracked: short name -> repo-root filename.
BENCH_FILES = {
    "campaign": "BENCH_campaign.json",
    "memory": "BENCH_memory.json",
    "planner": "BENCH_planner.json",
}

#: Minimum baseline magnitude for a ratio check; metrics smaller than
#: this are pure timer noise and are skipped.
EPSILON = 1e-9


def _walk_metrics(payload: Any, prefix: str = "") -> Iterator[Tuple[str, float, bool]]:
    """Yield ``(dotted_path, value, more_is_better)`` for tracked metrics.

    Rates and speedups regress when they *drop*; the profiler
    ``overhead`` regresses when it *rises*.  Everything else (raw
    seconds, counts, flags) is environment-dependent and skipped.
    """
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                yield from _walk_metrics(value, path)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                leaf = key.rsplit(".", 1)[-1]
                if (leaf in ("trials_per_sec", "trials_saved_ratio",
                             "reuse_ratio", "resident_ratio")
                        or leaf.startswith("speedup")):
                    yield path, float(value), True
                elif leaf == "overhead":
                    yield path, float(value), False
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            yield from _walk_metrics(value, f"{prefix}[{i}]")


def _load(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        print(f"bench-trend: unreadable {path}: {exc}", file=sys.stderr)
        return None


def _append_snapshot(results_dir: pathlib.Path, name: str,
                     payload: Dict[str, Any]) -> pathlib.Path:
    results_dir.mkdir(exist_ok=True)
    trend = results_dir / f"{name}.trend.jsonl"
    with open(trend, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True) + "\n")
    return trend


def _check(name: str, current: Dict[str, Any], baseline: Dict[str, Any],
           threshold: float) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` beyond ``threshold``."""
    base_metrics = {path: (value, more)
                    for path, value, more in _walk_metrics(baseline)}
    regressions = []
    for path, value, more_is_better in _walk_metrics(current):
        base = base_metrics.get(path)
        if base is None:
            continue  # new metric: no baseline to regress against
        base_value, _ = base
        if more_is_better:
            if abs(base_value) < EPSILON:
                continue
            change = (base_value - value) / abs(base_value)
            arrow = f"{base_value:g} -> {value:g}"
        else:
            # lower-is-better with a near-zero baseline (overhead):
            # compare absolute movement against the threshold directly
            change = ((value - base_value) / abs(base_value)
                      if abs(base_value) >= EPSILON else value - base_value)
            arrow = f"{base_value:g} -> {value:g}"
        if change > threshold:
            regressions.append(
                f"{name}:{path} regressed {change * 100:.1f}% ({arrow})"
            )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append benchmark snapshots and fail on regressions."
    )
    parser.add_argument("--record", action="store_true",
                        help="store current payloads as the baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression tolerance (default 0.20)")
    parser.add_argument("--no-fail", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="repo root holding the BENCH_*.json payloads")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root)
    results_dir = root / "bench_results"
    regressions: List[str] = []
    seen_any = False
    for name, filename in sorted(BENCH_FILES.items()):
        payload = _load(root / filename)
        if payload is None:
            print(f"bench-trend: {filename} absent, skipping")
            continue
        seen_any = True
        trend = _append_snapshot(results_dir, name, payload)
        baseline_path = results_dir / f"baseline_{name}.json"
        if args.record:
            baseline_path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"bench-trend: baseline recorded at {baseline_path}")
            continue
        baseline = _load(baseline_path)
        if baseline is None:
            print(f"bench-trend: no baseline for {name} "
                  f"(run with --record first); appended to {trend}")
            continue
        cur_scale = payload.get("scale")
        base_scale = baseline.get("scale")
        if cur_scale != base_scale and (cur_scale or base_scale):
            # different presets measure different workloads entirely —
            # comparing them reports phantom regressions, not real ones
            print(f"bench-trend: {name}: scale mismatch "
                  f"(current {cur_scale!r} vs baseline {base_scale!r}) — "
                  f"skipping check; re-record the baseline at this scale")
            continue
        found = _check(name, payload, baseline, args.threshold)
        regressions.extend(found)
        status = f"{len(found)} regression(s)" if found else "ok"
        print(f"bench-trend: {name}: {status} "
              f"(threshold {args.threshold * 100:.0f}%, history {trend})")

    if not seen_any:
        print("bench-trend: no BENCH_*.json payloads found — "
              "run the benchmark suites first", file=sys.stderr)
        return 1
    for line in regressions:
        print(f"bench-trend: {line}", file=sys.stderr)
    if regressions and not args.no_fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
