"""CombinedLibrary dispatch and HauberkProgram edge cases."""

import pytest

from repro.core.program import CombinedLibrary, HauberkProgram, RunStatus
from repro.errors import KernelCrash
from repro.gpu.memory import GlobalMemory
from repro.kir.interp.evalcore import ExecContext, InstrumentationLibrary
from repro.workloads import get_workload


class _A(InstrumentationLibrary):
    def __init__(self):
        self.calls = []

    def lib_alpha(self, ctx, frame, x):
        self.calls.append(("a", x))


class _B(InstrumentationLibrary):
    def __init__(self):
        self.calls = []

    def lib_beta(self, ctx, frame, x):
        self.calls.append(("b", x))

    def lib_alpha(self, ctx, frame, x):  # shadowed by _A when first
        self.calls.append(("b-alpha", x))


def _ctx():
    return ExecContext(GlobalMemory(16))


class TestCombinedLibrary:
    def test_routes_to_first_handler(self):
        a, b = _A(), _B()
        lib = CombinedLibrary([a, b])
        lib.invoke("__hauberk_alpha", _ctx(), {}, [1])
        lib.invoke("__hauberk_beta", _ctx(), {}, [2])
        assert a.calls == [("a", 1)]
        assert b.calls == [("b", 2)]  # alpha went to _A, not _B

    def test_unknown_call_crashes(self):
        lib = CombinedLibrary([_A()])
        with pytest.raises(KernelCrash):
            lib.invoke("__hauberk_gamma", _ctx(), {}, [])


class TestProgramEdgeCases:
    def test_crashed_run_has_no_output(self):
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        from repro.swifi import FaultSpec, enumerate_targets

        ptr = next(s for s in enumerate_targets(wl.kernel) if s.name == "Qr")
        result = prog.run(
            mode="fi", seed=0,
            fault=FaultSpec(site=ptr.site, mask=1 << 30, thread=0),
        )
        assert result.status is RunStatus.CRASH
        assert result.output is None
        assert result.kernel_time == 0.0
        assert "crash" in result.failure_reason

    def test_crash_does_not_leak_alarm_state(self):
        """The device control-block copy dies with the crashed kernel."""
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        prog.train(seeds=[0])
        from repro.swifi import FaultSpec, enumerate_targets

        ptr = next(s for s in enumerate_targets(wl.kernel) if s.name == "Qr")
        before_events = list(prog.cb.events)
        result = prog.run(
            mode="fift", seed=0,
            fault=FaultSpec(site=ptr.site, mask=1 << 30, thread=0),
        )
        assert result.status is RunStatus.CRASH
        assert not result.alarm
        assert prog.cb.events == before_events  # host copy untouched

    def test_builds_are_cached(self):
        wl = get_workload("CP")
        prog = HauberkProgram(wl)
        assert prog.build("ft") is prog.build("ft")

    def test_measure_time_requires_clean_run(self):
        wl = get_workload("CP")
        prog = HauberkProgram(wl)
        # ft without training alarms but still completes: measurable
        t = prog.measure_time("ft", seed=0)
        assert t > 0
