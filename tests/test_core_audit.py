"""Instrumentation-audit tests: clean builds pass, sabotage is caught."""

import pytest

from repro.core.audit import audit_build
from repro.core.nonloop import CHECKSUM_VAR, VALIDATE_FUNC
from repro.core.translator import HauberkTranslator, TranslatorOptions
from repro.kir.astnodes import Assign, BinOp, CallStmt
from repro.workloads import all_workloads, get_workload


@pytest.mark.parametrize("name", all_workloads())
@pytest.mark.parametrize("mode", ["ft", "fi", "fift", "profiler"])
def test_every_build_passes_audit(name, mode):
    wl = get_workload(name)
    build = HauberkTranslator().build(wl.kernel, mode)
    report = audit_build(wl.kernel, build)
    assert report.ok, [str(f) for f in report.findings]


def test_checksum_only_build_passes():
    wl = get_workload("RPES")
    build = HauberkTranslator(TranslatorOptions(nl_checksum_only=True)).build(
        wl.kernel, "ft"
    )
    assert audit_build(wl.kernel, build).ok


class TestSabotage:
    def _ft(self, name="MRI-Q"):
        wl = get_workload(name)
        return wl.kernel, HauberkTranslator().build(wl.kernel, "ft")

    def test_detects_missing_validate(self):
        original, build = self._ft()
        build.kernel.body = [
            s for s in build.kernel.body
            if not (isinstance(s, CallStmt) and s.func == VALIDATE_FUNC)
        ]
        report = audit_build(original, build)
        assert not report.ok
        assert any("validation" in str(f) for f in report.errors)

    def test_detects_unbalanced_checksum(self):
        original, build = self._ft()
        # remove one XOR update: the zero-sum invariant's static check fails
        for i, s in enumerate(build.kernel.body):
            if (
                isinstance(s, Assign)
                and s.name == CHECKSUM_VAR
                and isinstance(s.value, BinOp)
            ):
                del build.kernel.body[i]
                break
        report = audit_build(original, build)
        assert not report.ok

    def test_detects_missing_counter_increment(self):
        original, build = self._ft()

        def strip(block):
            out = []
            for s in block:
                if isinstance(s, Assign) and s.name.startswith("__cnt") and s.in_loop:
                    continue
                for attr in ("body", "then", "els"):
                    if hasattr(s, attr):
                        setattr(s, attr, strip(getattr(s, attr)))
                out.append(s)
            return out

        build.kernel.body = strip(build.kernel.body)
        report = audit_build(original, build)
        assert not report.ok
        assert any("incremented" in str(f) for f in report.errors)

    def test_detects_missing_fi_hook(self):
        wl = get_workload("CP")
        build = HauberkTranslator().build(wl.kernel, "fi")
        # drop the first hook
        for i, s in enumerate(build.kernel.body):
            if isinstance(s, CallStmt) and s.func == "__hauberk_fi":
                del build.kernel.body[i]
                break
        report = audit_build(wl.kernel, build)
        assert not report.ok
        assert any("lack FI hooks" in str(f) for f in report.errors)

    def test_detects_missing_range_check(self):
        original, build = self._ft()
        build.kernel.body = [
            s for s in build.kernel.body
            if not (isinstance(s, type(build.kernel.body[0])) and False)
        ]

        def strip(block):
            out = []
            for s in block:
                if isinstance(s, CallStmt) and s.func == "__hauberk_check_range":
                    continue
                for attr in ("body", "then", "els"):
                    if hasattr(s, attr):
                        setattr(s, attr, strip(getattr(s, attr)))
                out.append(s)
            return out

        build.kernel.body = strip(build.kernel.body)
        report = audit_build(original, build)
        assert not report.ok
        assert any("check_range" in str(f) for f in report.errors)
