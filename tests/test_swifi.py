"""SWIFI tests: specs, targets, instrumentation, injection, campaigns."""

import numpy as np
import pytest

from repro.errors import InjectionError, KernelCrash
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir import parse_kernel, kernel_to_source
from repro.kir.types import DType
from repro.swifi import (
    Campaign,
    FaultInjectionLibrary,
    FaultSpec,
    Outcome,
    build_fault_specs,
    classify_outcome,
    enumerate_targets,
    instrument_for_fi,
    select_targets,
)
from repro.swifi.campaign import TrialObservation
from repro.swifi.outcomes import OutcomeCounts
from repro.swifi.tracing import ValueTraceLibrary

SRC = """
kernel k(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        float v = data[i] * 2.0;
        acc = acc + v;
    }
    out[tid] = acc;
}
"""


def _setup(n=8, threads=4):
    device = Device()
    runtime = GPURuntime(device)
    kernel = parse_kernel(SRC)
    data = np.arange(1, n + 1, dtype=np.float32)
    ad = device.memory.alloc("d", n, DType.FLOAT32)
    ao = device.memory.alloc("o", threads, DType.FLOAT32)
    device.memory.memcpy_htod(ad, data)
    args = {"data": ad, "out": ao, "n": n}
    return device, runtime, kernel, args, ao


class TestFaultSpec:
    def test_valid(self):
        spec = FaultSpec(site=1, mask=0b110, thread=2, occurrence=3)
        assert spec.n_bits == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(site=0, mask=0),
            dict(site=0, mask=1 << 40),
            dict(site=0, mask=1, occurrence=0),
            dict(site=0, mask=1, thread=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InjectionError):
            FaultSpec(**kwargs)


class TestTargets:
    def test_enumerate_all(self):
        kernel = parse_kernel(SRC)
        sites = enumerate_targets(kernel)
        assert len(sites) == kernel.n_sites
        classes = {s.sensitivity_class for s in sites}
        assert classes == {"pointer", "integer", "fp"}

    def test_filter_by_class(self):
        kernel = parse_kernel(SRC)
        fp = enumerate_targets(kernel, classes=["fp"])
        assert all(s.dtype is DType.FLOAT32 for s in fp)
        with pytest.raises(InjectionError):
            enumerate_targets(kernel, classes=["bogus"])

    def test_select_subsamples(self):
        kernel = parse_kernel(SRC)
        rng = np.random.default_rng(0)
        sites = select_targets(kernel, 3, rng)
        assert len(sites) == 3
        with pytest.raises(InjectionError):
            select_targets(kernel, 0, rng)


class TestInstrumentation:
    def test_hooks_after_every_definition(self):
        kernel = parse_kernel(SRC)
        fi = instrument_for_fi(kernel)
        text = kernel_to_source(fi)
        # every original site gets a hook carrying its original id
        for site in enumerate_targets(kernel):
            assert f"__hauberk_fi({site.site}," in text

    def test_loop_header_hooks_in_body(self):
        kernel = parse_kernel(SRC)
        fi = instrument_for_fi(kernel)
        loop = next(s for s in fi.body if hasattr(s, "update") and s.update)
        # first stmt observes the init site, last the update site
        assert loop.body[0].func == "__hauberk_fi"
        assert loop.body[-1].func == "__hauberk_fi"

    def test_original_untouched(self):
        kernel = parse_kernel(SRC)
        before = kernel_to_source(kernel)
        instrument_for_fi(kernel)
        assert kernel_to_source(kernel) == before


class TestInjection:
    def test_fault_activates_and_corrupts_output(self):
        device, runtime, kernel, args, ao = _setup()
        fi_kernel = instrument_for_fi(kernel)
        acc_site = next(s for s in enumerate_targets(kernel) if s.name == "acc" and s.kind == "assign")
        lib = FaultInjectionLibrary(kernel, FaultSpec(site=acc_site.site, mask=1 << 30, thread=1, occurrence=2))
        runtime.launch(fi_kernel, 1, 4, args, lib=lib)
        assert lib.activation is not None
        assert lib.activation.variable == "acc"
        out = device.memory.memcpy_dtoh(ao)
        assert out[1] != out[0]  # thread 1 corrupted, thread 0 clean

    def test_only_chosen_occurrence(self):
        device, runtime, kernel, args, _ = _setup()
        fi_kernel = instrument_for_fi(kernel)
        site = next(s for s in enumerate_targets(kernel) if s.name == "v")
        lib = FaultInjectionLibrary(kernel, FaultSpec(site=site.site, mask=1, thread=0, occurrence=5))
        runtime.launch(fi_kernel, 1, 4, args, lib=lib)
        key = (site.site, 0)
        assert lib.state.counters[key] >= 5
        assert lib.activation.at_step > 0

    def test_unarmed_library_is_inert(self):
        device, runtime, kernel, args, ao = _setup()
        fi_kernel = instrument_for_fi(kernel)
        lib = FaultInjectionLibrary(kernel)
        runtime.launch(fi_kernel, 1, 4, args, lib=lib)
        assert lib.activation is None

    def test_pointer_fault_crashes(self):
        device, runtime, kernel, args, _ = _setup()
        fi_kernel = instrument_for_fi(kernel)
        ptr_site = next(s for s in enumerate_targets(kernel) if s.name == "data")
        lib = FaultInjectionLibrary(
            kernel, FaultSpec(site=ptr_site.site, mask=1 << 30, thread=0)
        )
        with pytest.raises(KernelCrash):
            runtime.launch(fi_kernel, 1, 4, args, lib=lib)

    def test_unknown_site_rejected(self):
        kernel = parse_kernel(SRC)
        lib = FaultInjectionLibrary(kernel)
        with pytest.raises(InjectionError):
            lib.arm(FaultSpec(site=9999, mask=1))

    def test_rearm_resets_state(self):
        device, runtime, kernel, args, _ = _setup()
        fi_kernel = instrument_for_fi(kernel)
        site = next(s for s in enumerate_targets(kernel) if s.name == "tid")
        lib = FaultInjectionLibrary(kernel, FaultSpec(site=site.site, mask=1, thread=0))
        runtime.launch(fi_kernel, 1, 4, args, lib=lib)
        assert lib.activation is not None
        lib.arm(None)
        assert lib.activation is None and not lib.state.counters


class TestOutcomes:
    def test_classification_matrix(self):
        assert classify_outcome(True, False, False) is Outcome.FAILURE
        assert classify_outcome(False, False, True) is Outcome.MASKED
        assert classify_outcome(False, True, True) is Outcome.DETECTED_MASKED
        assert classify_outcome(False, True, False) is Outcome.DETECTED
        assert classify_outcome(False, False, False) is Outcome.UNDETECTED

    def test_counts_and_ratios(self):
        counts = OutcomeCounts()
        for o in (Outcome.MASKED, Outcome.MASKED, Outcome.UNDETECTED, Outcome.DETECTED):
            counts.add(o)
        assert counts.total == 4
        assert counts.sdc_ratio == 0.25
        assert counts.coverage == 0.75
        assert counts.detected_ratio == 0.25

    def test_merge(self):
        a, b = OutcomeCounts(), OutcomeCounts()
        a.add(Outcome.MASKED)
        b.add(Outcome.FAILURE)
        merged = a.merge(b)
        assert merged.total == 2


class TestCampaign:
    def test_build_specs_deterministic(self):
        kernel = parse_kernel(SRC)
        sites = enumerate_targets(kernel)
        s1 = build_fault_specs(sites, n_threads=8, masks_per_site=3, seed=1)
        s2 = build_fault_specs(sites, n_threads=8, masks_per_site=3, seed=1)
        assert [(s.site, s.mask, s.thread, s.occurrence) for s in s1] == [
            (s.site, s.mask, s.thread, s.occurrence) for s in s2
        ]
        assert len(s1) == 3 * len(sites)

    def test_build_specs_bit_counts_cycle(self):
        kernel = parse_kernel(SRC)
        sites = enumerate_targets(kernel)[:1]
        specs = build_fault_specs(sites, n_threads=4, masks_per_site=4, bit_counts=(1, 6))
        assert [s.n_bits for s in specs] == [1, 6, 1, 6]

    def test_golden_check_rejects_dirty_runner(self):
        campaign = Campaign(lambda spec: TrialObservation(True, False, False, False))
        with pytest.raises(InjectionError):
            campaign.golden_check()

    def test_run_classifies(self):
        def runner(spec):
            # even masks get detected, odd masks escape
            return TrialObservation(
                failure=False, detected=spec.mask % 2 == 0, output_ok=False,
                activated=True,
            )

        campaign = Campaign(runner)
        specs = [FaultSpec(site=0, mask=m) for m in (2, 3, 4)]
        result = campaign.run(specs)
        assert result.counts.counts[Outcome.DETECTED] == 2
        assert result.counts.counts[Outcome.UNDETECTED] == 1
        assert result.by_bits(1).counts.total == 2  # mask 3 has two bits


class TestTracing:
    def test_trace_collects_values(self):
        device, runtime, kernel, args, _ = _setup()
        fi_kernel = instrument_for_fi(kernel)
        tracer = ValueTraceLibrary(kernel)
        runtime.launch(fi_kernel, 1, 4, args, lib=tracer)
        by_name = tracer.by_name()
        assert set(by_name) >= {"tid", "acc", "v", "i"}
        assert sorted(by_name["tid"]) == [0.0, 1.0, 2.0, 3.0]

    def test_sampling(self):
        device, runtime, kernel, args, _ = _setup()
        fi_kernel = instrument_for_fi(kernel)
        dense = ValueTraceLibrary(kernel, sample_every=1)
        runtime.launch(fi_kernel, 1, 4, args, lib=dense)
        device2, runtime2, kernel2, args2, _ = _setup()
        sparse = ValueTraceLibrary(kernel2, sample_every=4)
        runtime2.launch(instrument_for_fi(kernel2), 1, 4, args2, lib=sparse)
        assert len(sparse.by_name()["v"]) < len(dense.by_name()["v"])

    def test_sampling_records_first_occurrence(self):
        """Regression: sample_every=N must keep occurrences 1, N+1, 2N+1...

        The old ``count % N`` test dropped the first N-1 definitions at
        every site, so a site defined fewer than N times was invisible.
        """
        device, runtime, kernel, args, _ = _setup()
        lib = ValueTraceLibrary(kernel, sample_every=3)
        runtime.launch(instrument_for_fi(kernel), 1, 4, args, lib=lib)
        by_name = lib.by_name()
        # tid's site sees 4 definitions (one per thread); occurrences
        # 1 and 4 are kept — the first (thread 0) was dropped pre-fix
        assert sorted(by_name["tid"]) == [0.0, 3.0]
        # v's site sees 8 definitions x 4 threads = 32; occurrences
        # 1, 4, 7, ..., 31 are kept -> 11 samples
        assert len(by_name["v"]) == 11
        # dense tracing of the same kernel is a superset per site
        device2, runtime2, kernel2, args2, _ = _setup()
        dense = ValueTraceLibrary(kernel2, sample_every=1)
        runtime2.launch(instrument_for_fi(kernel2), 1, 4, args2, lib=dense)
        assert set(by_name["v"]) <= set(dense.by_name()["v"])


class TestResultViews:
    """Quarantine-aware result views and operational-rate semantics."""

    @staticmethod
    def _result_with_quarantine():
        from repro.swifi.campaign import (
            CampaignResult,
            QuarantineReport,
            TrialResult,
        )

        result = CampaignResult()
        ok_obs = TrialObservation(
            failure=False, detected=False, output_ok=False, activated=True
        )
        result.add(TrialResult(
            spec=FaultSpec(site=0, mask=0b1), outcome=Outcome.UNDETECTED,
            observation=ok_obs,
        ))
        result.add(TrialResult(
            spec=FaultSpec(site=1, mask=0b11), outcome=Outcome.MASKED,
            observation=TrialObservation(
                failure=False, detected=False, output_ok=True,
                activated=False,
            ),
        ))
        dead_spec = FaultSpec(site=2, mask=0b1)
        result.add(TrialResult(
            spec=dead_spec, outcome=Outcome.WORKER_KILLED,
            observation=TrialObservation(
                failure=True, detected=False, output_ok=False,
                activated=False, note="worker process killed",
            ),
        ))
        result.quarantined.append(QuarantineReport(
            spec=dead_spec, index=2, deaths=3, rounds=2, note="sigkill"
        ))
        return result

    def test_filter_carries_quarantine_reports(self):
        """Regression: filtered views used to drop quarantine evidence."""
        result = self._result_with_quarantine()
        view = result.filter(lambda t: t.spec.site >= 1)
        assert len(view.trials) == 2
        assert [r.spec.site for r in view.quarantined] == [2]
        assert view.summary()["quarantined"] == 1
        # a view excluding the dead spec carries no report
        assert result.filter(lambda t: t.spec.site == 0).quarantined == []

    def test_by_bits_carries_quarantine_reports(self):
        result = self._result_with_quarantine()
        single_bit = result.by_bits(1)
        assert [r.deaths for r in single_bit.quarantined] == [3]
        assert result.by_bits(2).quarantined == []

    def test_activation_ratio_excludes_worker_killed(self):
        """Regression: quarantined placeholders diluted the ratio.

        A quarantined spec never executed, so it can say nothing about
        whether the fault would have activated; only the two executed
        trials (one activated) count.
        """
        result = self._result_with_quarantine()
        assert result.activation_ratio == pytest.approx(0.5)

    def test_activation_ratio_all_quarantined_is_zero(self):
        from repro.swifi.campaign import CampaignResult, TrialResult

        result = CampaignResult()
        result.add(TrialResult(
            spec=FaultSpec(site=0, mask=1), outcome=Outcome.WORKER_KILLED,
            observation=TrialObservation(
                failure=True, detected=False, output_ok=False,
                activated=False,
            ),
        ))
        assert result.activation_ratio == 0.0


class TestSelectTargetsContract:
    """The documented ordering/determinism contract of select_targets."""

    def test_seeded_draws_are_reproducible(self):
        kernel = parse_kernel(SRC)
        a = select_targets(kernel, 3, np.random.default_rng(9))
        b = select_targets(kernel, 3, np.random.default_rng(9))
        assert [s.site for s in a] == [s.site for s in b]

    def test_returns_ascending_site_order_not_draw_order(self):
        kernel = parse_kernel(SRC)
        for seed in range(5):
            sites = select_targets(kernel, 4, np.random.default_rng(seed))
            ids = [s.site for s in sites]
            assert ids == sorted(ids)

    def test_classes_filter_changes_population_not_just_output(self):
        """classes= filters *before* sampling: same seed, different picks.

        Reproducing a selection therefore needs the identical classes
        argument, not just the identical seed — the documented caveat.
        """
        kernel = parse_kernel(SRC)
        fp_only = select_targets(kernel, 3, np.random.default_rng(2),
                                 classes=["fp"])
        assert {s.sensitivity_class for s in fp_only} == {"fp"}
        unfiltered = select_targets(kernel, 3, np.random.default_rng(2))
        assert [s.site for s in fp_only] != [s.site for s in unfiltered]

    def test_successive_draws_not_disjoint_batches(self):
        """One rng, two calls: the second is a fresh sample, not 'next 3'."""
        kernel = parse_kernel(SRC)
        rng = np.random.default_rng(0)
        first = {s.site for s in select_targets(kernel, 5, rng)}
        second = {s.site for s in select_targets(kernel, 5, rng)}
        assert first & second  # overlap expected from independent samples
