"""OpenCL front-end tests: translation, parity with CUDA, full pipeline."""

import numpy as np
import pytest

from repro.core.translator import HauberkTranslator
from repro.errors import KIRParseError
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir import kernel_to_source, parse_kernel
from repro.kir.opencl import opencl_to_minicuda, parse_opencl_kernel
from repro.kir.types import DType

OPENCL_SAXPY = """
__kernel void saxpy(__global float* x, __global float* y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float v = a * x[i] + y[i];
        y[i] = v;
    }
}
"""

CUDA_SAXPY = """
kernel saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float v = a * x[i] + y[i];
        y[i] = v;
    }
}
"""

OPENCL_REDUCE = """
__kernel void reduce(__global float* data, __global float* out, int n) {
    __local float tile[64];
    int t = get_local_id(0);
    tile[t] = data[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (t == 0) {
        float s = 0.0f;
        for (int i = 0; i < get_local_size(0); i++) {
            s = s + tile[i];
        }
        out[get_group_id(0)] = s;
    }
}
"""


class TestTranslation:
    def test_saxpy_matches_cuda_dialect(self):
        ocl = parse_opencl_kernel(OPENCL_SAXPY)
        cuda = parse_kernel(CUDA_SAXPY)
        assert kernel_to_source(ocl) == kernel_to_source(cuda)

    def test_local_arrays_hoisted_to_shared(self):
        k = parse_opencl_kernel(OPENCL_REDUCE)
        assert k.uses_sync
        assert k.shared[0].name == "tile" and k.shared[0].size == 64

    def test_workitem_functions(self):
        text = opencl_to_minicuda("__kernel void k(int n) { int a = get_global_size(1); int b = get_num_groups(0); }")
        assert "gridDim.y * blockDim.y" in text
        assert "gridDim.x" in text

    def test_suffixed_and_native_intrinsics(self):
        k = parse_opencl_kernel(
            "__kernel void k(float v, __global float* o) "
            "{ o[0] = sqrtf(v) + native_exp(v); }"
        )
        text = kernel_to_source(k)
        assert "sqrt(v)" in text and "exp(v)" in text

    def test_size_t_and_uint(self):
        k = parse_opencl_kernel(
            "__kernel void k(__global int* o, int n) "
            "{ size_t i = get_global_id(0); uint j = 2; o[0] = int(i) + j; }"
        )
        assert k.validated

    def test_unsupported_dimension_rejected(self):
        with pytest.raises(KIRParseError):
            parse_opencl_kernel("__kernel void k(int n) { int i = get_global_id(2); }")

    def test_unsupported_local_usage_rejected(self):
        with pytest.raises(KIRParseError):
            parse_opencl_kernel(
                "__kernel void k(__local float* p, int n) { int i = n; }"
            )


class TestExecutionParity:
    def _run(self, kernel, n=64):
        device = Device()
        runtime = GPURuntime(device)
        xs = np.arange(n, dtype=np.float32)
        ys = np.ones(n, dtype=np.float32)
        ax = device.memory.alloc("x", n, DType.FLOAT32)
        ay = device.memory.alloc("y", n, DType.FLOAT32)
        device.memory.memcpy_htod(ax, xs)
        device.memory.memcpy_htod(ay, ys)
        runtime.launch(kernel, 2, 32, {"x": ax, "y": ay, "a": 3.0, "n": n})
        return device.memory.memcpy_dtoh(ay)

    def test_opencl_kernel_executes(self):
        out = self._run(parse_opencl_kernel(OPENCL_SAXPY))
        assert np.allclose(out, 3.0 * np.arange(64) + 1)

    def test_barrier_kernel_executes(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_opencl_kernel(OPENCL_REDUCE)
        data = np.arange(32, dtype=np.float32)
        ad = device.memory.alloc("d", 32, DType.FLOAT32)
        ao = device.memory.alloc("o", 2, DType.FLOAT32)
        device.memory.memcpy_htod(ad, data)
        runtime.launch(k, 2, 16, {"data": ad, "out": ao, "n": 32})
        out = device.memory.memcpy_dtoh(ao)
        assert out[0] == data[:16].sum() and out[1] == data[16:].sum()


class TestHauberkOnOpenCL:
    def test_full_translator_pipeline(self):
        """Hauberk instruments an OpenCL kernel exactly like a CUDA one."""
        kernel = parse_opencl_kernel(
            """
__kernel void distsum(__global float* pts, __global float* out, int n) {
    int tid = get_global_id(0);
    float total = 0.0f;
    for (int j = 0; j < n; j++) {
        float d = pts[j] - pts[tid];
        total = total + d * d;
    }
    out[tid] = total;
}
"""
        )
        ft = HauberkTranslator().build(kernel, "ft")
        assert ft.detector_configs
        assert ft.detector_configs[0].variable == "total"
        text = kernel_to_source(ft.kernel)
        assert "__hauberk_check_range" in text
        assert "__hauberk_checksum_validate" in text
