"""Tests for repro.obs: tracing, metrics, and the instrumented layers."""

import json

import pytest

from repro.core.translator import HauberkTranslator
from repro.errors import KernelCrash
from repro.gpu.cluster import GPUNode
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    NullTracer,
    RingBufferSink,
    Tracer,
    fresh_registry,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
    traced,
    use_tracer,
    validate_trace,
)
from repro.swifi import Campaign, FaultSpec
from repro.swifi.campaign import TrialObservation

from conftest import launch_saxpy


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Each test gets a fresh registry and the NullTracer default."""
    fresh_registry()
    set_tracer(None)
    yield
    set_registry(None)
    set_tracer(None)


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_link_parents(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer", who="a"):
            with tracer.span("inner"):
                tracer.event("tick", n=1)
        records = sink.records
        assert [r["type"] for r in records] == ["event", "span", "span"]
        event, inner, outer = records
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert event["span_id"] == inner["span_id"]
        assert outer["attrs"] == {"who": "a"}
        validate_trace(records)

    def test_span_timing_monotonic(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            pass
        (rec,) = sink.records
        assert rec["t_end"] >= rec["t_start"] >= 0.0
        assert rec["dur"] == rec["t_end"] - rec["t_start"]

    def test_span_error_attr_on_exception(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (rec,) = sink.records
        assert rec["attrs"]["error"] == "ValueError"

    def test_late_attrs_via_set(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("s") as span:
            span.set(cycles=42)
        assert sink.records[0]["attrs"]["cycles"] == 42

    def test_ring_buffer_caps_capacity(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink)
        for i in range(10):
            tracer.event("e", i=i)
        assert [r["attrs"]["i"] for r in sink.records] == [7, 8, 9]

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(str(path)))
        with tracer.span("outer"):
            tracer.event("point", value=1.5)
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        validate_trace(records)

    def test_validate_trace_rejects_escaping_child(self):
        bad = [
            {"type": "span", "name": "p", "span_id": 1, "parent_id": None,
             "t_start": 0.0, "t_end": 1.0},
            {"type": "span", "name": "c", "span_id": 2, "parent_id": 1,
             "t_start": 0.5, "t_end": 2.0},
        ]
        with pytest.raises(ValueError):
            validate_trace(bad)

    def test_null_tracer_is_default_and_inert(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        with tracer.span("anything", big=1) as span:
            span.set(more=2)
            tracer.event("nothing")

    def test_use_tracer_scopes_installation(self):
        scoped = Tracer(RingBufferSink())
        with use_tracer(scoped) as active:
            assert get_tracer() is scoped is active
        assert isinstance(get_tracer(), NullTracer)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_monotonicity(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "help!")
        c.inc(kernel="a")
        c.inc(2.0, kernel="a")
        c.inc(kernel="b")
        assert c.value(kernel="a") == 3.0
        assert c.value(kernel="b") == 1.0
        assert c.value(kernel="zzz") == 0.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(5.0)
        g.dec(2.0)
        g.inc(0.5)
        assert g.value() == 3.5

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.7, 3.0, 20.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(24.2)
        text = reg.render_prometheus()
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="5"} 3' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text

    def test_registry_idempotent_and_type_safe(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_prometheus_rendering_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "things").inc(kind="k")
        text = reg.render_prometheus()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{kind="k"} 1' in text
        assert text.endswith("\n")

    def test_json_export_parses(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        data = json.loads(reg.render_json())
        assert data["c"]["type"] == "counter"
        assert data["g"]["samples"][0]["value"] == 2.5
        assert data["h"]["samples"][0]["count"] == 1

    def test_traced_decorator_spans(self):
        sink = RingBufferSink()
        with use_tracer(Tracer(sink)):
            @traced("my.op", flavor="test")
            def add(a, b):
                return a + b

            assert add(1, 2) == 3
        (rec,) = sink.records
        assert rec["name"] == "my.op"
        assert rec["attrs"] == {"flavor": "test"}


# ---------------------------------------------------------------------------
# instrumented layers
# ---------------------------------------------------------------------------


class TestLaunchInstrumentation:
    def test_launch_metrics_and_span(self, runtime, saxpy_kernel):
        sink = RingBufferSink()
        with use_tracer(Tracer(sink)):
            result, _ = launch_saxpy(runtime, saxpy_kernel, n=64)
        reg = get_registry()
        assert reg.counter("repro_launch_total").value(kernel="saxpy") == 1
        assert reg.counter("repro_launch_cycles_total").value(
            kernel="saxpy"
        ) == result.total_cycles
        assert reg.histogram("repro_launch_loop_fraction").count(kernel="saxpy") == 1
        spans = [r for r in sink.records if r["name"] == "gpu.launch"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["total_cycles"] == result.total_cycles
        validate_trace(sink.records)

    def test_crash_recorded(self, runtime):
        from repro.kir.parser import parse_kernel

        kernel = parse_kernel("""
        kernel div(float* out, int n) {
            int q = 7 / n;
            out[0] = float(q);
        }
        """)
        from repro.gpu.memory import Allocation
        from repro.kir.types import DType

        out = runtime.device.memory.alloc("out", 4, DType.FLOAT32)
        with pytest.raises(KernelCrash):
            runtime.launch(kernel, 1, 1, {"out": out, "n": 0})
        failures = get_registry().counter("repro_launch_failures_total")
        assert failures.value(kernel="div", kind="crash") == 1
        assert isinstance(out, Allocation)


class TestCampaignInstrumentation:
    def test_trial_outcomes_and_summary(self):
        observations = {
            2: TrialObservation(failure=True, detected=False, output_ok=False,
                                activated=True),
            3: TrialObservation(failure=False, detected=True, output_ok=False,
                                activated=True),
        }

        def runner(spec):
            return observations.get(
                spec.mask,
                TrialObservation(failure=False, detected=False, output_ok=True,
                                 activated=False),
            )

        sink = RingBufferSink()
        specs = [FaultSpec(site=s, mask=m) for s, m in ((0, 2), (1, 3), (2, 4))]
        with use_tracer(Tracer(sink)):
            result = Campaign(runner).run(specs)

        summary = result.summary()
        assert summary["trials"] == 3
        assert summary["outcomes"]["failure"] == 1
        assert summary["outcomes"]["detected"] == 1
        assert summary["outcomes"]["masked"] == 1
        assert summary["activation_ratio"] == pytest.approx(2 / 3)

        reg = get_registry()
        outcomes = reg.counter("repro_trial_outcomes_total")
        assert outcomes.value(outcome="failure") == 1
        assert outcomes.value(outcome="detected") == 1
        assert outcomes.value(outcome="masked") == 1
        assert reg.gauge("repro_trial_activation_ratio").value() == pytest.approx(2 / 3)
        assert reg.histogram("repro_trial_site_faults").count() == 3
        assert reg.counter("repro_campaigns_total").value() == 1

        span = next(r for r in sink.records if r["name"] == "swifi.campaign")
        assert span["attrs"]["trials"] == 3
        trial_events = [r for r in sink.records if r["name"] == "swifi.trial"]
        assert len(trial_events) == 3
        validate_trace(sink.records)


class TestGuardianInstrumentation:
    class _FakeResult:
        def __init__(self, status, steps=1000):
            self.status = status
            self.failure_reason = "x"
            self.launch = type("L", (), {"max_thread_steps": steps})()

    def test_supervision_metrics(self):
        from repro.core.guardian import Guardian
        from repro.core.program import RunStatus

        calls = []

        def launch(device, budget):
            calls.append(budget)
            if len(calls) == 1:
                return self._FakeResult(RunStatus.HANG)
            return self._FakeResult(RunStatus.OK)

        sink = RingBufferSink()
        with use_tracer(Tracer(sink)):
            _result, report = Guardian(node=GPUNode(num_devices=2)).supervise(launch)
        assert report.hang_kills == 1
        reg = get_registry()
        assert reg.counter("repro_guardian_attempts_total").value() == 2
        assert reg.counter("repro_guardian_restarts_total").value() == 1
        assert reg.counter("repro_guardian_hang_kills_total").value() == 1
        assert reg.gauge("repro_guardian_watchdog_budget").value() == calls[-1]
        failures = [r for r in sink.records if r["name"] == "guardian.failure"]
        assert len(failures) == 1 and failures[0]["attrs"]["status"] == "hang"


class TestTranslatorInstrumentation:
    def test_pass_metrics(self, saxpy_kernel):
        translator = HauberkTranslator()
        build = translator.build(saxpy_kernel, "fi")
        reg = get_registry()
        assert reg.counter("repro_translator_passes_total").value(mode="fi") == 1
        added = reg.counter("repro_translator_statements_added_total")
        assert added.value(rule="fi_hook") > 0
        assert build.statements_added["fi_hook"] == added.value(rule="fi_hook")
        assert reg.histogram("repro_translator_seconds").count(mode="fi") == 1

    def test_ft_counts_detector_rules(self, accum_kernel):
        HauberkTranslator().build(accum_kernel, "ft")
        added = get_registry().counter("repro_translator_statements_added_total")
        assert added.value(rule="loop") > 0
        assert added.value(rule="nonloop") > 0


class TestAlphaInstrumentation:
    def test_adjustment_recorded(self):
        from repro.obs.instrument import record_alpha_adjustment

        record_alpha_adjustment(1.0, 10.0)
        record_alpha_adjustment(10.0, 10.0)  # unchanged -> no adjustment
        record_alpha_adjustment(10.0, 1.0)
        reg = get_registry()
        adjustments = reg.counter("repro_alpha_adjustments_total")
        assert adjustments.value(direction="up") == 1
        assert adjustments.value(direction="down") == 1
        assert reg.gauge("repro_alpha_value").value() == 1.0


# ---------------------------------------------------------------------------
# CLI + acceptance: figure harness under tracing, metrics exposition
# ---------------------------------------------------------------------------


class TestCli:
    def test_metrics_command_prometheus(self, capsys):
        from repro.__main__ import main

        assert main(["metrics", "fig04", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_launch_total counter" in out
        assert "repro_translator_passes_total" in out

    def test_metrics_command_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "metrics.json"
        assert main(["metrics", "fig04", "--scale", "smoke",
                     "--format", "json", "--output", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "repro_launch_total" in data

    def test_run_with_trace_and_json_dir(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "trace.jsonl"
        tables = tmp_path / "tables"
        assert main(["run", "fig04", "--scale", "smoke",
                     "--trace", str(trace), "--json-dir", str(tables)]) == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert records, "trace must not be empty"
        validate_trace(records)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "gpu.launch" in span_names
        written = list(tables.glob("*.json"))
        assert written
        doc = json.loads(written[0].read_text())
        assert set(doc) == {"title", "headers", "rows"}

    def test_metrics_command_unknown_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["metrics", "nope"]) == 2


class TestAcceptance:
    def test_figure_harness_exposes_required_metrics(self):
        """Acceptance: launch, trial-outcome, guardian, and translator
        metrics are all exposed after one figure harness plus the two
        surfaces (guardian, campaign) the cheap figure does not touch."""
        from repro.core.guardian import Guardian
        from repro.core.program import RunStatus
        from repro.harness.config import SMOKE
        from repro.harness.fig04_loops import run_fig04

        def runner(spec):
            return TrialObservation(failure=False, detected=False,
                                    output_ok=True, activated=spec is not None)

        sink = RingBufferSink(capacity=65536)
        with use_tracer(Tracer(sink)):
            run_fig04(SMOKE)
            Campaign(runner).run([FaultSpec(site=0, mask=1)])
            Guardian(node=GPUNode(num_devices=1)).supervise(
                lambda device, budget: TestGuardianInstrumentation._FakeResult(
                    RunStatus.OK
                )
            )
        validate_trace(sink.records)
        text = get_registry().render_prometheus()
        for required in ("repro_launch_total", "repro_trial_outcomes_total",
                         "repro_guardian_attempts_total",
                         "repro_translator_passes_total"):
            assert required in text
