"""Fault-tolerance layer tests: retry policy, resilient map, deadlines.

Covers ``repro.exec.retry`` in isolation (policy math, blame and
quarantine mechanics of ``map_resilient``, the ``trial_deadline``
guard) and its integration with ``run_campaign`` (worker-killing specs
quarantined into ``WORKER_KILLED`` trials, strict mode preserved,
options object surviving the trip into fork workers) plus the clock
seam (``Clock``/``FakeClock``) and the shared ``BlameLedger``.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.errors import InjectionError
from repro.exec import (
    BlameLedger,
    Clock,
    DeathRecord,
    FakeClock,
    ForkPool,
    RetryPolicy,
    TrialTimeout,
    fork_available,
    map_resilient,
    trial_deadline,
)
from repro.swifi import CampaignOptions, FaultSpec, Outcome, run_campaign
from repro.swifi.campaign import CampaignResult, TrialObservation

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

#: Tiny backoff so retry tests stay fast.
FAST_RETRY = RetryPolicy(max_deaths=2, backoff_base=0.001, backoff_max=0.002)


# -- RetryPolicy ----------------------------------------------------------


class TestRetryPolicy:
    def test_defaults_are_tolerant(self):
        policy = RetryPolicy()
        assert policy.tolerant
        assert policy.max_deaths == 2

    def test_zero_deaths_is_strict(self):
        assert not RetryPolicy(max_deaths=0).tolerant

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3)
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(9) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_deaths=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# -- trial_deadline -------------------------------------------------------


class TestTrialDeadline:
    def test_expires_into_trial_timeout(self):
        with pytest.raises(TrialTimeout):
            with trial_deadline(0.05):
                time.sleep(5)

    def test_fast_block_unaffected(self):
        with trial_deadline(5):
            value = 1 + 1
        assert value == 2

    def test_none_and_zero_are_noops(self):
        with trial_deadline(None):
            pass
        with trial_deadline(0):
            pass

    def test_timer_cleared_after_block(self):
        import signal

        with trial_deadline(0.2):
            pass
        time.sleep(0.25)  # would fire if the timer leaked
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


# -- map_resilient --------------------------------------------------------

#: Items whose processing hard-kills the worker process.
KILLERS = frozenset({13})


def _chunk_fn(chunk):
    for item in chunk:
        if item in KILLERS:
            os._exit(1)
    return [item * 10 for item in chunk]


def _raising_chunk_fn(chunk):
    raise ValueError("chunk exploded")


@needs_fork
class TestMapResilient:
    def _pool(self, workers=2):
        return ForkPool(workers, crash_error=InjectionError)

    def test_clean_run_completes_every_item(self):
        items = list(range(8))
        completed, dead = map_resilient(
            self._pool(), _chunk_fn, items, 3, FAST_RETRY, clock=FakeClock()
        )
        assert dead == []
        done = {i: r for chunk, result in completed
                for i, r in zip(chunk, result)}
        assert done == {i: i * 10 for i in items}

    def test_killer_item_quarantined_others_complete(self):
        items = [1, 2, 13, 4, 5, 6]
        completed, dead = map_resilient(
            self._pool(), _chunk_fn, items, 3, FAST_RETRY, clock=FakeClock()
        )
        assert [d.item for d in dead] == [13]
        assert dead[0].deaths >= FAST_RETRY.max_deaths
        assert dead[0].isolated_deaths >= 1
        done = {i for chunk, _result in completed for i in chunk}
        assert done == {1, 2, 4, 5, 6}

    def test_strict_policy_raises_crash_error(self):
        with pytest.raises(InjectionError):
            map_resilient(
                self._pool(), _chunk_fn, [13], 1,
                RetryPolicy(max_deaths=0), clock=FakeClock(),
            )

    def test_fn_exceptions_propagate(self):
        with pytest.raises(ValueError, match="chunk exploded"):
            map_resilient(
                self._pool(), _raising_chunk_fn, [1, 2], 2, FAST_RETRY,
                clock=FakeClock(),
            )

    def test_events_and_results_stream(self):
        events = []
        results = []
        map_resilient(
            self._pool(), _chunk_fn, [1, 13, 3], 3, FAST_RETRY,
            clock=FakeClock(),
            on_event=lambda kind, **attrs: events.append(kind),
            on_result=lambda chunk, result: results.append(tuple(chunk)),
        )
        assert "worker_death" in events
        assert "retry" in events
        assert "quarantine" in events
        assert {i for chunk in results for i in chunk} == {1, 3}

    def test_death_record_shape(self):
        record = DeathRecord(item=7, deaths=2, isolated_deaths=1, round_no=3)
        assert record.note == ""


# -- run_campaign integration --------------------------------------------


def _selective_crash_factory():
    def runner(spec):
        if spec.site == 666:
            os._exit(13)
        return TrialObservation(
            failure=False, detected=True, output_ok=False, activated=True
        )

    return runner


def _sleepy_runner_factory():
    def runner(spec):
        if spec.site == 777:
            time.sleep(30)
        return TrialObservation(
            failure=False, detected=False, output_ok=True, activated=True
        )

    return runner


def _specs(sites):
    return [FaultSpec(site=s, mask=1, thread=0, occurrence=1) for s in sites]


class TestCampaignFaultTolerance:
    @needs_fork
    def test_killer_spec_quarantined_campaign_completes(self):
        specs = _specs([1, 2, 666, 4, 5, 6])
        result = run_campaign(
            None, specs,
            options=CampaignOptions(workers=2, chunk_size=2, retry=FAST_RETRY),
            runner_factory=_selective_crash_factory,
        )
        summary = result.summary()
        assert summary["trials"] == len(specs)
        assert summary["quarantined"] == 1
        assert summary["outcomes"]["worker_killed"] == 1
        assert [t.spec for t in result.trials] == specs
        killed = result.trials[2]
        assert killed.outcome is Outcome.WORKER_KILLED
        assert killed.observation.failure
        report = result.quarantined[0]
        assert report.index == 2
        assert report.spec.site == 666
        assert report.deaths >= FAST_RETRY.max_deaths

    def test_serial_trial_timeout_degrades_to_hang(self):
        specs = _specs([1, 777, 3])
        result = run_campaign(
            None, specs,
            options=CampaignOptions(workers=1, trial_timeout=0.2),
            runner_factory=_sleepy_runner_factory,
        )
        assert [t.outcome for t in result.trials] == [
            Outcome.MASKED, Outcome.FAILURE, Outcome.MASKED,
        ]
        assert result.trials[1].observation.note.startswith("hang:")

    @needs_fork
    def test_pooled_trial_timeout_degrades_to_hang(self):
        specs = _specs([1, 777, 3, 4])
        result = run_campaign(
            None, specs,
            options=CampaignOptions(workers=2, trial_timeout=0.2,
                                    retry=FAST_RETRY),
            runner_factory=_sleepy_runner_factory,
        )
        outcomes = [t.outcome for t in result.trials]
        assert outcomes[1] is Outcome.FAILURE
        assert outcomes.count(Outcome.MASKED) == 3

    @needs_fork
    def test_options_round_trip_through_fork_workers(self):
        # the options object crosses into workers via fork; every field
        # must arrive intact (verified indirectly: the custom timeout
        # fires inside the worker)
        options = CampaignOptions(
            workers=2, seed=3, chunk_size=1, trial_timeout=0.2,
            retry=FAST_RETRY,
        )
        result = run_campaign(
            None, _specs([777, 2]), options=options,
            runner_factory=_sleepy_runner_factory,
        )
        assert result.trials[0].outcome is Outcome.FAILURE


# -- CampaignOptions ------------------------------------------------------


class TestCampaignOptions:
    def test_frozen_and_evolvable(self):
        options = CampaignOptions()
        with pytest.raises(Exception):
            options.workers = 4
        evolved = options.evolve(workers=4, differential=False)
        assert evolved.workers == 4
        assert not evolved.differential
        assert options.workers == 1  # original untouched

    def test_pickle_round_trip(self):
        options = CampaignOptions(
            workers=3, seed=9, chunk_size=5, differential=False,
            run_dir="runs", retry=RetryPolicy(max_deaths=1),
            trial_timeout=2.5,
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone == options

    def test_journal_root_resume_wins(self):
        assert CampaignOptions().journal_root is None
        assert CampaignOptions(run_dir="a").journal_root == "a"
        assert CampaignOptions(run_dir="a", resume="b").journal_root == "b"
        assert CampaignOptions(resume="b").resuming
        assert not CampaignOptions(run_dir="a").resuming

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignOptions(trial_timeout=-1)
        with pytest.raises(TypeError):
            CampaignOptions(retry="twice")


# -- clock seam and blame ledger ------------------------------------------


def _counting_runner_factory():
    def runner(spec):
        return TrialObservation(
            failure=False, detected=False, output_ok=True, activated=True
        )

    return runner


class TestClockSeam:
    def test_fake_clock_advances_on_sleep(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        clock.sleep(2.5)
        assert clock.now() == 12.5
        assert clock.sleeps == [2.5]
        clock.advance(0.5)
        assert clock.now() == 13.0

    def test_default_clock_is_monotonic_wall(self):
        clock = Clock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    @needs_fork
    def test_backoff_sleeps_recorded_not_slept(self):
        # a worker-killing item forces retry rounds; the fake clock
        # must absorb every backoff without wall-clock delay
        clock = FakeClock()
        policy = RetryPolicy(max_deaths=2, backoff_base=5.0, backoff_max=9.0)
        start = time.monotonic()
        map_resilient(
            ForkPool(2, crash_error=InjectionError), _chunk_fn,
            [1, 13, 3], 3, policy, clock=clock,
        )
        assert time.monotonic() - start < 5.0  # never actually slept
        assert any(s > 0 for s in clock.sleeps)


class TestBlameLedger:
    def test_strike_and_condemn(self):
        ledger = BlameLedger(policy=RetryPolicy(max_deaths=2))
        assert not ledger.condemned("spec-a")
        ledger.strike("spec-a")
        ledger.strike("spec-a", attributable=True)
        # two deaths but only one isolated: condemned needs both
        assert ledger.deaths["spec-a"] == 2
        assert ledger.condemned("spec-a")

    def test_shared_strikes_never_condemn_alone(self):
        ledger = BlameLedger(policy=RetryPolicy(max_deaths=2))
        ledger.strike("spec-b")
        ledger.strike("spec-b")
        ledger.strike("spec-b")
        assert not ledger.condemned("spec-b")  # no isolated death yet
        ledger.strike("spec-b", attributable=True)
        assert ledger.condemned("spec-b")

    def test_record_carries_tallies(self):
        ledger = BlameLedger(policy=RetryPolicy(max_deaths=1))
        ledger.strike(7, attributable=True)
        record = ledger.record(item="item-7", key=7, round_no=3)
        assert record.item == "item-7"
        assert record.deaths == 1
        assert record.isolated_deaths == 1
        assert record.round_no == 3


# -- zero-trial summary regression ---------------------------------------


class TestZeroTrialSummary:
    def test_empty_result_reports_zero_coverage(self):
        summary = CampaignResult().summary()
        assert summary["trials"] == 0
        assert summary["coverage"] == 0.0
        assert summary["sdc_ratio"] == 0.0
        assert summary["quarantined"] == 0

    def test_empty_campaign_run(self):
        result = run_campaign(
            None, [], options=CampaignOptions(workers=1),
            runner_factory=_counting_runner_factory,
        )
        assert result.summary()["coverage"] == 0.0
