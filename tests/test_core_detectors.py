"""HAUBERK-NL / HAUBERK-L transformation tests.

The central invariant: on a fault-free run of any FT-instrumented
kernel, the shared checksum is zero at exit, no duplication mismatch
fires, and every loop detector sees in-range averages after training.
"""

import numpy as np
import pytest

from repro.core.controlblock import ControlBlock
from repro.core.ftlib import HauberkFTLibrary
from repro.core.loopdet import apply_loop_detectors
from repro.core.nonloop import CHECKSUM_VAR, MISMATCH_VAR, apply_nonloop_detectors
from repro.core.translator import HauberkTranslator, TranslatorOptions
from repro.errors import KIRValidationError
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir import kernel_to_source, parse_kernel
from repro.kir.types import DType
from repro.kir.validate import validate_kernel
from repro.workloads import all_workloads, get_workload


class CheckProbe(HauberkFTLibrary):
    """FT library that also records checksum validations."""

    def __init__(self):
        super().__init__(ControlBlock())
        self.validations = []

    def lib_checksum_validate(self, ctx, frame, checksum, nl_mismatch):
        self.validations.append((checksum, nl_mismatch))
        super().lib_checksum_validate(ctx, frame, checksum, nl_mismatch)


def _run_ft(kernel_src_or_kernel, args_builder, grid=1, block=4):
    """Instrument with NL only and run fault-free; returns the probe."""
    kernel = (
        parse_kernel(kernel_src_or_kernel)
        if isinstance(kernel_src_or_kernel, str)
        else kernel_src_or_kernel
    )
    clone = kernel.clone()
    apply_nonloop_detectors(clone)
    validate_kernel(clone)
    device = Device()
    runtime = GPURuntime(device)
    probe = CheckProbe()
    args = args_builder(device)
    runtime.launch(clone, grid, block, args, lib=probe)
    return probe


class TestNonLoop:
    def test_checksum_zero_on_clean_run(self):
        src = """
kernel k(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float a = data[tid] * 2.0;
    float b = a + 1.0;
    float c = b * b - a;
    out[tid] = c;
}
"""

        def build(device):
            d = device.memory.alloc("d", 4, DType.FLOAT32)
            o = device.memory.alloc("o", 4, DType.FLOAT32)
            device.memory.memcpy_htod(d, np.arange(4, dtype=np.float32))
            return {"data": d, "out": o, "n": 4}

        probe = _run_ft(src, build)
        assert probe.validations == [(0, 0)] * 4
        assert not probe.cb.sdc_bit

    def test_checksum_zero_with_redefinitions(self):
        src = """
kernel k(int n, int* out) {
    int x = n * 2;
    int y = x + 1;
    x = y - n;
    x = x * 3;
    out[0] = x + y;
}
"""

        def build(device):
            o = device.memory.alloc("o", 1, DType.INT32)
            return {"n": 5, "out": o}

        probe = _run_ft(src, build, block=1)
        assert probe.validations == [(0, 0)]

    def test_checksum_zero_with_branches(self):
        src = """
kernel k(int n, int* out) {
    int base = n * 3;
    if (n > 2) {
        int t = base + 1;
        out[0] = t;
    } else {
        int u = base - 1;
        out[0] = u;
    }
}
"""

        def build(device):
            o = device.memory.alloc("o", 1, DType.INT32)
            return {"n": 5, "out": o}

        probe = _run_ft(src, build, block=1)
        assert probe.validations == [(0, 0)]

    def test_checksum_zero_with_loop_updated_vars(self):
        src = """
kernel k(int n, float* out) {
    float acc = 0.0;
    float scale = 2.5;
    for (int i = 0; i < n; i++) {
        acc = acc + scale;
    }
    out[0] = acc;
}
"""

        def build(device):
            o = device.memory.alloc("o", 1, DType.FLOAT32)
            return {"n": 6, "out": o}

        probe = _run_ft(src, build, block=1)
        assert probe.validations == [(0, 0)]

    def test_all_workloads_validate_clean(self):
        """The zero-sum invariant holds across every benchmark kernel."""
        from repro.core.program import HauberkProgram, RunStatus

        for name in all_workloads():
            wl = get_workload(name)
            prog = HauberkProgram(wl, options=TranslatorOptions(enable_loop=False))
            result = prog.run(mode="ft", seed=0)
            assert result.status is RunStatus.OK, name
            checksum_events = [e for e in result.events if e.kind == "checksum"]
            mismatch_events = [e for e in result.events if e.kind == "nl_mismatch"]
            assert not checksum_events, f"{name}: nonzero checksum"
            assert not mismatch_events, f"{name}: duplication mismatch"

    def test_rejects_return(self):
        kernel = parse_kernel("kernel k(int n) { if (n > 0) { return; } int x = n; }")
        with pytest.raises(KIRValidationError):
            apply_nonloop_detectors(kernel.clone())

    def test_structure_of_instrumented_source(self):
        kernel = parse_kernel(
            "kernel k(float a, float* out) { float x = a * 2.0; out[0] = x; }"
        )
        clone = kernel.clone()
        info = apply_nonloop_detectors(clone)
        validate_kernel(clone)
        text = kernel_to_source(clone)
        assert f"int {CHECKSUM_VAR} = 0;" in text
        assert f"int {MISMATCH_VAR} = 0;" in text
        assert "__hauberk_checksum_validate" in text
        assert text.count("__chk = __chk ^") % 2 == 0  # paired XORs
        assert info.protected_params == ["a", "out"]
        assert info.duplicated_definitions == 1

    def test_const_definitions_not_duplicated(self):
        kernel = parse_kernel("kernel k(float* out) { float z = 0.0; out[0] = z; }")
        clone = kernel.clone()
        info = apply_nonloop_detectors(clone)
        assert info.duplicated_definitions == 0
        assert info.protected_definitions == 1

    def test_self_referencing_definition_duplicated_before(self):
        src = "kernel k(int n, int* out) { int x = n; x = x + 1; out[0] = x; }"
        clone = parse_kernel(src).clone()
        apply_nonloop_detectors(clone)
        validate_kernel(clone)
        text = kernel_to_source(clone)
        # the duplicate of "x = x + 1" must be computed from the OLD x
        dup_line = next(l for l in text.splitlines() if "__dup1" in l and "=" in l)
        assert text.index(dup_line) < text.index("x = x + 1;")


class TestLoopDetector:
    LOOP_SRC = """
kernel k(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        float v = data[i] * 2.0;
        acc = acc + v;
    }
    out[tid] = acc;
}
"""

    def test_self_accumulator_needs_no_loop_body_adds(self):
        kernel = parse_kernel(self.LOOP_SRC)
        clone = kernel.clone()
        info = apply_loop_detectors(clone, maxvar=1)
        validate_kernel(clone)
        cfg = info.configs[0]
        assert cfg.variable == "acc"
        assert cfg.self_accumulating
        assert cfg.has_trip_check
        text = kernel_to_source(clone)
        assert "__acc0" not in text  # no extra accumulator
        assert "__cnt0 = __cnt0 + 1" in text
        assert "__hauberk_check_range(0" in text
        assert "__hauberk_check_equal(0" in text

    def test_non_self_accumulator_gets_accumulator(self):
        src = """
kernel k(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    for (int i = 0; i < n; i++) {
        float v = data[i] * 2.0;
        float w = v + 1.0;
        out[i] = w;
    }
}
"""
        clone = parse_kernel(src).clone()
        info = apply_loop_detectors(clone, maxvar=1)
        validate_kernel(clone)
        text = kernel_to_source(clone)
        assert "float __acc0 = 0.0;" in text
        assert "__acc0 = __acc0 +" in text
        assert not info.configs[0].self_accumulating

    def test_profile_mode_places_profiler_calls(self):
        clone = parse_kernel(self.LOOP_SRC).clone()
        apply_loop_detectors(clone, maxvar=1, mode="profile")
        validate_kernel(clone)
        text = kernel_to_source(clone)
        assert "__hauberk_profile_range(0" in text
        assert "__hauberk_check_range" not in text

    def test_profile_and_ft_agree_on_detector_ids(self):
        for name in ("CP", "MRI-Q", "TPACF", "PNS"):
            wl = get_workload(name)
            translator = HauberkTranslator()
            prof = translator.build(wl.kernel, "profiler")
            ft = translator.build(wl.kernel, "ft")
            assert [c.detector for c in prof.detector_configs] == [
                c.detector for c in ft.detector_configs
            ]
            assert [c.variable for c in prof.detector_configs] == [
                c.variable for c in ft.detector_configs
            ]

    def test_maxvar_places_multiple_detectors(self):
        src = """
kernel k(float* d, int n, float* o) {
    float s1 = 0.0;
    float s2 = 0.0;
    for (int i = 0; i < n; i++) {
        s1 = s1 + d[i];
        s2 = s2 + d[i] * d[i];
    }
    o[0] = s1;
    o[1] = s2;
}
"""
        clone = parse_kernel(src).clone()
        info = apply_loop_detectors(clone, maxvar=2)
        assert len(info.configs) == 2

    def test_zero_iteration_loop_is_guarded(self):
        clone = parse_kernel(self.LOOP_SRC).clone()
        apply_loop_detectors(clone, maxvar=1)
        validate_kernel(clone)
        device = Device()
        runtime = GPURuntime(device)
        cb = ControlBlock()
        from repro.core.controlblock import DetectorConfig

        cb.configure([DetectorConfig(detector=0)])
        lib = HauberkFTLibrary(cb)
        d = device.memory.alloc("d", 4, DType.FLOAT32)
        o = device.memory.alloc("o", 4, DType.FLOAT32)
        # n = 0: zero iterations; the cnt != 0 guard must skip the check,
        # but the trip-count invariant (0 == 0) still holds
        runtime.launch(clone, 1, 4, {"data": d, "out": o, "n": 0}, lib=lib)
        assert not [e for e in cb.events if e.kind == "range"]
        assert not [e for e in cb.events if e.kind == "trip"]
