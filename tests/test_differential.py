"""Differential trial execution: parity with full execution, fallbacks.

The engine's whole contract is *bit-identical* campaign results: every
test here runs the same seeded spec list through the full path and the
differential path on independent programs and compares trial-by-trial.
"""

from __future__ import annotations

import pytest

from repro.core.program import HauberkProgram
from repro.exec.pool import fork_available
from repro.gpu.memory import ReplayConflict, ReplayMemoryGuard
from repro.obs.metrics import fresh_registry, get_registry
from repro.swifi.campaign import Campaign, build_fault_specs
from repro.swifi.differential import (
    DifferentialEngine,
    _Ineligible,
    differential_runner,
    get_engine,
    kernel_replay_obstacle,
)
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.options import CampaignOptions
from repro.swifi.parallel import run_campaign
from repro.swifi.targets import enumerate_targets
from repro.workloads import all_workloads, get_workload

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

MODES = ("fi", "fift")


def _campaign_specs(workload, n=24, seed=11, bit_counts=(1,)):
    sites = enumerate_targets(workload.kernel)
    inp = workload.generate_input(0)
    return build_fault_specs(
        sites, inp.n_threads, masks_per_site=2, bit_counts=bit_counts, seed=seed
    )[:n]


def _run_both(name, mode, specs=None, check_golden=False):
    """(full CampaignResult, diff CampaignResult) on independent programs."""
    prog_full = HauberkProgram(get_workload(name))
    prog_diff = HauberkProgram(get_workload(name))
    if specs is None:
        specs = _campaign_specs(prog_full.workload)
    full_runner = prog_full.trial_runner(mode, 0)
    diff_runner = differential_runner(prog_diff, mode, 0)
    if check_golden:
        # the fault-free spec=None trial routes through the full path
        # and must not disturb the engine's memoized state
        assert full_runner(None) == diff_runner(None)
    full = Campaign(full_runner).run(specs)
    diff = Campaign(diff_runner).run(specs)
    return full, diff


def _assert_identical(full, diff):
    assert full.summary() == diff.summary()
    assert len(full.trials) == len(diff.trials)
    for a, b in zip(full.trials, diff.trials):
        assert a.spec == b.spec
        assert a.outcome == b.outcome
        assert a.observation == b.observation


class TestEligibility:
    def test_closure_kernels_eligible(self):
        for name in ("CP", "MRI-Q", "MRI-FHD", "PNS", "RPES", "SAD"):
            assert kernel_replay_obstacle(get_workload(name).kernel) is None

    def test_sync_kernel_ineligible(self):
        assert kernel_replay_obstacle(get_workload("TPACF").kernel) == "uses_sync"

    def test_ineligible_campaign_still_runs_and_matches(self):
        full, diff = _run_both("TPACF", "fi", specs=_campaign_specs(
            get_workload("TPACF"), n=6))
        _assert_identical(full, diff)

    def test_engine_cached_per_mode_and_control_block(self):
        prog = HauberkProgram(get_workload("MRI-FHD"))
        eng_fi = get_engine(prog, "fi", 0)
        assert isinstance(eng_fi, DifferentialEngine)
        assert get_engine(prog, "fi", 0) is eng_fi
        eng_fift = get_engine(prog, "fift", 0)
        assert isinstance(eng_fift, DifferentialEngine)
        assert eng_fift is not eng_fi
        # an alpha change re-keys the fift engine (stale golden events
        # must not be replayed under the new detector configuration)
        prog.cb.set_alpha_all(2.5)
        eng_alpha = get_engine(prog, "fift", 0)
        assert eng_alpha is not eng_fift
        assert get_engine(prog, "fi", 0) is eng_fi


class TestParityAllWorkloads:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("name", all_workloads())
    def test_campaign_parity(self, name, mode):
        full, diff = _run_both(name, mode, check_golden=True)
        _assert_identical(full, diff)

    @pytest.mark.parametrize("mode", MODES)
    def test_parity_multibit_masks(self, mode):
        specs = _campaign_specs(get_workload("SAD"), n=20, seed=5,
                                bit_counts=(1, 6, 15))
        full, diff = _run_both("SAD", mode, specs=specs)
        _assert_identical(full, diff)

    def test_parity_across_sequential_campaigns(self):
        # the engine's memory self-heals between campaigns on one program
        prog_full = HauberkProgram(get_workload("RPES"))
        prog_diff = HauberkProgram(get_workload("RPES"))
        for seed in (3, 4):
            specs = _campaign_specs(prog_full.workload, n=10, seed=seed)
            full = Campaign(prog_full.trial_runner("fift", 0)).run(specs)
            diff = Campaign(differential_runner(prog_diff, "fift", 0)).run(specs)
            _assert_identical(full, diff)


class TestPointerFaultFallback:
    def _pointer_specs(self, workload):
        """Specs flipping high bits of pointer parameters (delayed)."""
        sites = enumerate_targets(workload.kernel)
        ptr_sites = [s for s in sites if s.dtype.is_pointer]
        assert ptr_sites, "workload has no pointer sites"
        inp = workload.generate_input(0)
        specs = []
        for s in ptr_sites:
            for thread in (0, inp.n_threads // 2, inp.n_threads - 1):
                for mask in (1 << 1, 1 << 3, 1 << 28):
                    specs.append(FaultSpec(
                        site=s.site, mask=mask, thread=thread,
                        occurrence=1, timing="delayed",
                        label="ptr-fallback",
                    ))
        return specs

    @pytest.mark.parametrize("mode", MODES)
    def test_pointer_faults_match_full_execution(self, mode):
        # low-bit pointer flips redirect accesses inside the mapped
        # range — exactly the trials that must detect a replay conflict
        # and fall back, or prove the touch harmless
        wl = get_workload("CP")
        specs = self._pointer_specs(wl)
        full, diff = _run_both("CP", mode, specs=specs)
        _assert_identical(full, diff)

    def test_conflicting_replay_falls_back_and_counts(self):
        fresh_registry()
        wl = get_workload("CP")
        specs = self._pointer_specs(wl)
        prog = HauberkProgram(get_workload("CP"))
        Campaign(differential_runner(prog, "fi", 0)).run(specs)
        metrics = get_registry().as_dict()
        hits = metrics.get("repro_swifi_diff_hits_total")
        fallbacks = metrics.get("repro_swifi_diff_fallbacks_total")
        assert hits is not None and fallbacks is not None
        reasons = {
            s["labels"].get("reason"): s["value"]
            for s in fallbacks["samples"]
        }
        assert reasons.get("replay_conflict", 0) > 0
        total = sum(s["value"] for s in hits["samples"]) + sum(reasons.values())
        assert total == len(specs)


class TestGuardSemantics:
    def test_later_owner_load_conflicts(self):
        from repro.gpu.memory import GlobalMemory

        mem = GlobalMemory(64)
        mem.alloc("buf", 8)
        guard = ReplayMemoryGuard(mem, thread=1, store_owner={5: 3},
                                  load_readers={})
        with pytest.raises(ReplayConflict):
            guard.load_f32(5)
        # earlier owners hold their golden value in both worlds
        earlier = ReplayMemoryGuard(mem, thread=5, store_owner={5: 3},
                                    load_readers={})
        earlier.load_f32(5)

    def test_store_rollback_restores_memory(self):
        from repro.gpu.memory import GlobalMemory

        mem = GlobalMemory(64)
        mem.alloc("buf", 8)
        mem.store_i32(2, 41)
        guard = ReplayMemoryGuard(mem, thread=0, store_owner={}, load_readers={})
        guard.store_i32(2, 99)
        guard.store_i32(3, 7)
        guard.rollback()
        assert mem.load_i32(2) == 41
        assert mem.load_i32(3) == 0

    def test_deferred_store_checked_against_golden(self):
        from repro.gpu.memory import GlobalMemory

        mem = GlobalMemory(64)
        mem.alloc("buf", 8)
        mem.store_i32(4, 10)
        golden = mem.snapshot()
        guard = ReplayMemoryGuard(mem, thread=0, store_owner={4: 0},
                                  load_readers={4: 3})
        guard.store_i32(4, 10)  # same bits: later reader sees nothing
        assert 4 in guard.deferred
        assert not guard.deferred_mismatch(golden)
        guard.store_i32(4, 11)  # changed bits: trial must fall back
        assert guard.deferred_mismatch(golden)


class TestMetricsParity:
    def test_launch_and_outcome_counters_match_full(self):
        specs = _campaign_specs(get_workload("MRI-FHD"), n=12)

        fresh_registry()
        prog_full = HauberkProgram(get_workload("MRI-FHD"))
        Campaign(prog_full.trial_runner("fi", 0)).run(specs)
        full_metrics = get_registry().as_dict()

        fresh_registry()
        prog_diff = HauberkProgram(get_workload("MRI-FHD"))
        Campaign(differential_runner(prog_diff, "fi", 0)).run(specs)
        diff_metrics = get_registry().as_dict()

        assert full_metrics["repro_trial_outcomes_total"] == \
            diff_metrics["repro_trial_outcomes_total"]
        # differential mode launches once more: the golden recording run
        full_launches = sum(
            s["value"] for s in full_metrics["repro_launch_total"]["samples"]
        )
        diff_launches = sum(
            s["value"] for s in diff_metrics["repro_launch_total"]["samples"]
        )
        assert diff_launches == full_launches + 1


class TestParallelComposition:
    @needs_fork
    def test_parallel_differential_matches_serial_full(self):
        specs = _campaign_specs(get_workload("SAD"), n=12)
        prog_full = HauberkProgram(get_workload("SAD"))
        serial_full = run_campaign(
            prog_full, specs, mode="fift",
            options=CampaignOptions(workers=1, differential=False),
        )
        prog_diff = HauberkProgram(get_workload("SAD"))
        parallel_diff = run_campaign(
            prog_diff, specs, mode="fift",
            options=CampaignOptions(workers=2, differential=True),
        )
        _assert_identical(serial_full, parallel_diff)

    def test_no_differential_flag_uses_full_runner(self):
        fresh_registry()
        specs = _campaign_specs(get_workload("SAD"), n=4)
        prog = HauberkProgram(get_workload("SAD"))
        run_campaign(
            prog, specs, mode="fi",
            options=CampaignOptions(workers=1, differential=False),
        )
        metrics = get_registry().as_dict()
        assert "repro_swifi_diff_hits_total" not in metrics
        assert "repro_swifi_diff_fallbacks_total" not in metrics


def test_ineligible_marker_records_reason():
    prog = HauberkProgram(get_workload("TPACF"))
    entry = get_engine(prog, "fi", 0)
    assert isinstance(entry, _Ineligible)
    assert entry.reason == "uses_sync"
