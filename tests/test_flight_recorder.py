"""Flight-recorder tests: profiler, heartbeats/progress, and `repro report`.

Three contracts under test:

* **Observation is free and harmless** — the default profiler is a
  no-op, and enabling profiling or progress never changes campaign
  results (progress-on is bit-identical to progress-off).
* **Artifacts are written and merged correctly** — ``profile.json``
  aggregates worker phase totals, ``heartbeats.jsonl`` ends with a
  final beat covering every trial, journal records carry served-by
  tags, the ring sink counts drops, and histogram snapshot merges
  survive a key-reordering JSON round trip.
* **Reports are deterministic** — ``repro report`` output is
  byte-identical across reruns, its outcome tallies match
  ``CampaignResult.summary()`` exactly, and a killed-and-resumed run
  reports the same facts as an uninterrupted one.
"""

from __future__ import annotations

import importlib.util
import io
import json
import os

import pytest

from repro.core.program import HauberkProgram
from repro.obs import RingBufferSink
from repro.obs.metrics import MetricsRegistry, fresh_registry
from repro.obs.profile import (
    PHASE_DIFF_REPLAY,
    PHASE_FULL_RUN,
    NullPhaseProfiler,
    PhaseProfiler,
    get_profiler,
    served_tag,
    set_profiler,
    use_profiler,
)
from repro.obs.progress import Heartbeat, HeartbeatMonitor, ProgressRenderer
from repro.obs.report import build_report, render_json, render_markdown
from repro.swifi import CampaignJournal, CampaignOptions, run_campaign
from repro.swifi.journal import spec_fingerprint

from test_journal import _assert_identical, _truncate_journal
from test_parallel_campaign import TinyWorkload, _tiny_specs, needs_fork


@pytest.fixture
def registry():
    reg = fresh_registry()
    yield reg
    fresh_registry()


@pytest.fixture(autouse=True)
def _reset_profiler():
    yield
    set_profiler(None)


# -- phase profiler -------------------------------------------------------


class TestPhaseProfiler:
    def test_default_profiler_is_disabled_noop(self):
        prof = get_profiler()
        assert not prof.enabled
        with prof.phase("anything"):
            pass
        prof.begin_trial(0)
        assert prof.end_trial() is None
        assert prof.totals == {}

    def test_phases_accumulate_counts_and_seconds(self, registry):
        ticks = iter(range(100))
        prof = PhaseProfiler(clock=lambda: float(next(ticks)))
        with prof.phase("merge"):
            pass
        with prof.phase("merge"):
            pass
        with prof.phase(PHASE_FULL_RUN, reason="atomics"):
            pass
        assert prof.totals["merge"] == [2, 2.0]
        assert prof.totals["full_run:atomics"] == [1, 1.0]
        hist = registry.get("repro_campaign_phase_seconds")
        assert hist.count(phase="merge", reason="") == 2
        assert hist.count(phase=PHASE_FULL_RUN, reason="atomics") == 1

    def test_trial_cost_records_and_served_tags(self, registry):
        prof = PhaseProfiler()
        prof.begin_trial(7)
        with prof.phase(PHASE_DIFF_REPLAY):
            pass
        prof.note_served("diff")
        cost = prof.end_trial()
        assert cost["index"] == 7
        assert cost["served"] == "diff"
        assert PHASE_DIFF_REPLAY in cost["phases"]
        assert served_tag(cost) == "diff"
        assert served_tag(None) is None
        assert served_tag({"served": "full", "reason": "atomics"}) \
            == "full:atomics"

    def test_take_and_absorb_totals(self, registry):
        worker = PhaseProfiler()
        worker.add("merge", 1.0)
        worker.add("merge", 2.0)
        shipped = worker.take_totals()
        assert worker.totals == {}
        parent = PhaseProfiler()
        parent.add("merge", 0.5)
        parent.absorb_totals(shipped)
        assert parent.totals["merge"] == [3, 3.5]
        snap = parent.snapshot()
        assert snap["merge"] == {"count": 3, "seconds": 3.5}

    def test_use_profiler_scopes_and_restores(self):
        before = get_profiler()
        prof = PhaseProfiler(registry_histograms=False)
        with use_profiler(prof) as installed:
            assert installed is prof
            assert get_profiler() is prof
        assert get_profiler() is before

    def test_null_profiler_sheds_all_state(self):
        prof = NullPhaseProfiler()
        prof.add("merge", 1.0)
        prof.begin_trial(3)
        prof.note_served("diff")
        assert prof.end_trial() is None
        assert prof.totals == {}


# -- ring sink drop counter -----------------------------------------------


class TestRingSinkDrops:
    def test_drops_counted_and_metered(self, registry):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"i": i})
        assert sink.dropped == 2
        assert [r["i"] for r in sink.records] == [2, 3, 4]
        assert registry.get("repro_obs_trace_dropped_total").value() == 2

    def test_no_drops_no_metric(self, registry):
        sink = RingBufferSink(capacity=8)
        sink.emit({"i": 0})
        assert sink.dropped == 0
        assert registry.get("repro_obs_trace_dropped_total") is None


# -- histogram snapshot merging -------------------------------------------


class TestHistogramMerge:
    def test_sorted_keys_round_trip_merges_correctly(self):
        # json.dumps(sort_keys=True) orders "10.0" before "2.5"; the
        # merge must re-pair counts with numeric bounds, not dict order
        src = MetricsRegistry()
        hist = src.histogram("h", buckets=(0.5, 1.0, 2.5, 10.0))
        for value in (0.2, 0.7, 3.0, 20.0):
            hist.observe(value)
        snapshot = json.loads(json.dumps(src.as_dict(), sort_keys=True))
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(0.5, 1.0, 2.5, 10.0))
        dst.merge_dict(snapshot)
        merged = dst.get("h")
        assert merged.count() == 4
        assert merged.sum() == pytest.approx(23.9)
        assert src.render_prometheus() == dst.render_prometheus()

    def test_round_trip_into_empty_registry(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(0.5, 1.0, 2.5, 10.0)).observe(3.0)
        snapshot = json.loads(json.dumps(src.as_dict(), sort_keys=True))
        dst = MetricsRegistry()
        dst.merge_dict(snapshot)
        assert dst.get("h").count() == 1

    def test_genuine_mismatch_raises_clearly(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 4)).observe(1.0)
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge_dict(b.as_dict())


# -- heartbeats and progress ----------------------------------------------


class TestHeartbeats:
    def test_monitor_writes_final_covering_heartbeat(self, tmp_path):
        path = tmp_path / "heartbeats.jsonl"
        monitor = HeartbeatMonitor(total=10, path=str(path))
        monitor.advance(4, {"masked": 4}, pid=111)
        monitor.advance(6, {"undetected": 6}, pid=222)
        monitor.close()
        beats = [json.loads(line) for line in path.read_text().splitlines()]
        assert [b["seq"] for b in beats] == [1, 2, 3]
        assert beats[-1]["source"] == "final"
        assert beats[-1]["done"] == 10
        assert beats[-1]["total"] == 10
        assert beats[-1]["outcomes"] == {"masked": 4, "undetected": 6}
        assert {"v", "pid", "rate", "elapsed"} <= set(beats[0])

    def test_unforced_advances_are_throttled(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        monitor = HeartbeatMonitor(total=100, path=str(path),
                                   min_interval=3600, clock=lambda: 3599.0)
        for _ in range(50):
            monitor.advance(1, {"masked": 1}, source="serial", force=False)
        monitor.close()
        beats = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(beats) == 1  # only the final beat
        assert beats[0]["done"] == 50  # counts were never lost

    def test_renderer_draws_bar_rate_eta_and_tallies(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, label="TINY")
        renderer.update(Heartbeat(
            seq=1, pid=1, done=5, total=10, outcomes={"masked": 5},
            rate=2.5, elapsed=2.0,
        ))
        renderer.update(Heartbeat(
            seq=2, pid=1, done=10, total=10,
            outcomes={"masked": 7, "undetected": 3}, rate=5.0, elapsed=2.0,
            source="final",
        ))
        renderer.close()
        text = stream.getvalue()
        assert "TINY" in text
        assert "5/10" in text and "eta 2.0s" in text
        assert "10/10" in text and "done" in text
        assert "masked=7" in text and "undetected=3" in text
        assert text.endswith("\n")


# -- campaign integration -------------------------------------------------


class TestCampaignFlightRecorder:
    def test_profile_writes_artifacts_and_keeps_results(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        plain = run_campaign(
            HauberkProgram(wl), specs, mode="fi",
            options=CampaignOptions(),
        )
        root = tmp_path / "runs"
        profiled = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(run_dir=str(root), profile=True),
        )
        _assert_identical(plain, profiled)
        (entry,) = [d for d in root.iterdir() if d.is_dir()]
        profile = json.loads((entry / "profile.json").read_text())
        phases = profile["phases"]
        for expected in ("parse_build", "golden_record", "diff_replay",
                         "journal_append", "merge"):
            assert phases[expected]["count"] >= 1
            assert phases[expected]["seconds"] >= 0.0
        assert phases["diff_replay"]["count"] + sum(
            v["count"] for k, v in phases.items() if k.startswith("full_run")
        ) >= len(specs)
        records = CampaignJournal._load_records(entry / "journal.jsonl")
        assert len(records) == len(specs)
        assert all(r.served is not None for r in records.values())

    def test_progress_is_bit_identical_to_progress_off(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        off = run_campaign(
            HauberkProgram(wl), specs, mode="fi", options=CampaignOptions()
        )
        on = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(progress=True, profile=True),
        )
        _assert_identical(off, on)

    def test_journaled_run_writes_heartbeats(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = tmp_path / "runs"
        run_campaign(
            HauberkProgram(wl), specs, mode="fi",
            options=CampaignOptions(run_dir=str(root)),
        )
        (entry,) = [d for d in root.iterdir() if d.is_dir()]
        beats = [json.loads(line) for line in
                 (entry / "heartbeats.jsonl").read_text().splitlines()]
        assert beats[-1]["source"] == "final"
        assert beats[-1]["done"] == len(specs)
        assert beats[-1]["total"] == len(specs)

    def test_fresh_run_truncates_stale_heartbeats(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = tmp_path / "runs"
        options = CampaignOptions(run_dir=str(root))
        run_campaign(HauberkProgram(wl), specs, mode="fi", options=options)
        (entry,) = [d for d in root.iterdir() if d.is_dir()]
        run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi", options=options
        )
        seqs = [json.loads(line)["seq"] for line in
                (entry / "heartbeats.jsonl").read_text().splitlines()]
        # A fresh (non-resume) run replaces the heartbeat file: one
        # strictly increasing sequence from 1, not two concatenated runs.
        assert seqs == list(range(1, len(seqs) + 1))

    def test_served_tags_attribute_differential_path(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = tmp_path / "runs"
        run_campaign(
            HauberkProgram(wl), specs, mode="fi",
            options=CampaignOptions(
                run_dir=str(root), profile=True, differential=False
            ),
        )
        (entry,) = [d for d in root.iterdir() if d.is_dir()]
        records = CampaignJournal._load_records(entry / "journal.jsonl")
        assert all(r.served == "full:differential_off"
                   for r in records.values())

    @needs_fork
    def test_pooled_profile_merges_worker_phase_totals(self, tmp_path):
        wl, specs = _tiny_specs()
        root = tmp_path / "runs"
        result = run_campaign(
            HauberkProgram(wl), specs, mode="fi",
            options=CampaignOptions(
                workers=2, chunk_size=3, run_dir=str(root), profile=True
            ),
        )
        (entry,) = [d for d in root.iterdir() if d.is_dir()]
        phases = json.loads((entry / "profile.json").read_text())["phases"]
        served = phases.get("diff_replay", {"count": 0})["count"] + sum(
            v["count"] for k, v in phases.items() if k.startswith("full_run")
        )
        assert served >= len(specs)
        beats = [json.loads(line) for line in
                 (entry / "heartbeats.jsonl").read_text().splitlines()]
        assert beats[-1]["done"] == len(specs)
        assert any(b["source"] == "chunk" for b in beats)
        serial = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(),
        )
        _assert_identical(serial, result)


def _square(x):
    return x * x


class TestPoolLiveResults:
    @needs_fork
    def test_map_ordered_streams_results_and_keeps_order(self):
        from repro.exec.pool import ForkPool

        landed = []
        results = ForkPool(2).map_ordered(
            _square, [3, 1, 2], on_result=lambda i, r: landed.append((i, r)))
        assert results == [9, 1, 4]  # submission order preserved
        assert sorted(landed) == [(0, 9), (1, 1), (2, 4)]


# -- repro report ---------------------------------------------------------


def _run_journaled(tmp_path, name="runs", **options):
    wl, specs = _tiny_specs(masks_per_site=1)
    root = tmp_path / name
    result = run_campaign(
        HauberkProgram(wl), specs, mode="fi",
        options=CampaignOptions(run_dir=str(root), profile=True, **options),
    )
    return root, specs, result


class TestReport:
    def test_summary_matches_campaign_result_exactly(self, tmp_path):
        root, _specs, result = _run_journaled(tmp_path)
        report = build_report(str(root))
        (campaign,) = report["campaigns"]
        assert campaign["summary"] == result.summary()
        assert campaign["complete"]
        assert campaign["workload"] == "TINY"
        diff = campaign["differential"]
        tagged = diff["replay_hits"] + sum(diff["fallbacks"].values())
        assert tagged + diff["untagged"] == campaign["journaled_trials"]
        assert diff["untagged"] == 0

    def test_report_is_deterministic_across_reruns(self, tmp_path):
        root, _specs, _result = _run_journaled(tmp_path)
        first = build_report(str(root))
        second = build_report(str(root))
        assert render_json(first) == render_json(second)
        assert render_markdown(first) == render_markdown(second)

    def test_killed_and_resumed_reports_like_uninterrupted(self, tmp_path):
        root_a, specs, result_a = _run_journaled(tmp_path, name="a")
        root_b, _specs, _ = _run_journaled(tmp_path, name="b")
        _truncate_journal(str(root_b), keep=len(specs) // 2)
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(
                resume=str(root_b), run_dir=str(root_b), profile=True
            ),
        )
        _assert_identical(result_a, resumed)
        report_a = build_report(str(root_a), include_timing=False)
        report_b = build_report(str(root_b), include_timing=False)
        assert report_a["campaigns"] == report_b["campaigns"]

    def test_incomplete_run_is_flagged(self, tmp_path):
        root, specs, _result = _run_journaled(tmp_path)
        _truncate_journal(str(root), keep=3)
        report = build_report(str(root))
        (campaign,) = report["campaigns"]
        assert not campaign["complete"]
        assert campaign["journaled_trials"] == 3
        assert campaign["summary"]["trials"] == 3

    def test_quarantine_timeline_from_journal(self, tmp_path):
        root, specs, _result = _run_journaled(tmp_path)
        (entry,) = [d for d in root.iterdir() if d.is_dir()]
        with open(entry / "journal.jsonl", "a", encoding="utf-8") as fh:
            from repro.swifi.journal import _digest

            payload = {
                "i": len(specs), "spec": spec_fingerprint(specs[0]),
                "outcome": "worker_killed", "obs": None,
                "q": {"deaths": 3, "rounds": 2, "note": "worker died 3x"},
            }
            payload["dg"] = _digest(payload)[:12]
            fh.write(json.dumps(payload, sort_keys=True,
                                separators=(",", ":")) + "\n")
        report = build_report(str(root))
        (campaign,) = report["campaigns"]
        (quarantined,) = campaign["quarantine"]
        assert quarantined["deaths"] == 3
        assert quarantined["rounds"] == 2
        assert campaign["summary"]["quarantined"] == 1
        assert campaign["summary"]["outcomes"]["worker_killed"] == 1
        text = render_markdown(report)
        assert "Quarantine timeline" in text

    def test_markdown_report_covers_all_sections(self, tmp_path):
        root, _specs, _result = _run_journaled(tmp_path)
        text = render_markdown(build_report(str(root)))
        for heading in ("# Campaign report", "### Outcomes",
                        "### Differential attribution",
                        "### Time where it went"):
            assert heading in text

    def test_cli_report_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main

        root, _specs, result = _run_journaled(tmp_path)
        out = tmp_path / "report.json"
        assert main(["report", str(root), "--format", "json",
                     "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["campaigns"][0]["summary"] == result.summary()
        assert main(["report", str(tmp_path / "missing")]) == 2

    def test_bench_trend_gates_regressions(self, tmp_path, capsys):
        spec = importlib.util.spec_from_file_location(
            "bench_trend",
            os.path.join(os.path.dirname(__file__), os.pardir,
                         "scripts", "bench_trend.py"),
        )
        bench_trend = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_trend)

        payload = {
            "benchmark": "campaign_throughput",
            "workloads": {"CP": {"configs": {"w1-diff": {
                "seconds": 0.1, "trials_per_sec": 100.0,
                "speedup_vs_serial_full": 10.0,
            }}}},
            "overhead": {"overhead": 0.01},
        }
        root = tmp_path
        bench = root / "BENCH_campaign.json"
        bench.write_text(json.dumps(payload))
        argv = ["--root", str(root)]
        assert bench_trend.main(argv + ["--record"]) == 0
        assert bench_trend.main(argv) == 0  # same payload: no regression

        worse = json.loads(bench.read_text())
        worse["workloads"]["CP"]["configs"]["w1-diff"]["trials_per_sec"] = 50.0
        worse["overhead"]["overhead"] = 0.5
        # absolute wall time shifting is environment, not regression
        worse["workloads"]["CP"]["configs"]["w1-diff"]["seconds"] = 9.9
        bench.write_text(json.dumps(worse))
        assert bench_trend.main(argv) == 1
        assert bench_trend.main(argv + ["--no-fail"]) == 0
        err = capsys.readouterr().err
        assert "trials_per_sec" in err and "overhead" in err
        assert "seconds" not in err

        history = (root / "bench_results" / "campaign.trend.jsonl")
        assert len(history.read_text().splitlines()) == 4  # every invocation

    def test_trace_aggregates_join(self, tmp_path):
        root, _specs, _result = _run_journaled(tmp_path)
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "type": "span", "name": "swifi.campaign", "span_id": 1,
                "parent_id": None, "t_start": 0.0, "t_end": 1.5, "dur": 1.5,
                "attrs": {},
            }) + "\n")
            fh.write(json.dumps({
                "type": "event", "name": "swifi.heartbeat", "span_id": 1,
                "t": 0.5, "attrs": {},
            }) + "\n")
        report = build_report(str(root), trace=str(trace))
        assert report["trace"]["spans"]["swifi.campaign"]["count"] == 1
        assert report["trace"]["events"]["swifi.heartbeat"] == 1
        without = build_report(str(root), include_timing=False,
                               trace=str(trace))
        assert "trace" not in without
