"""CPU machine tests: ISA semantics, page protection, programs, campaigns."""

import numpy as np
import pytest

from repro.cpusim import (
    CPUFaultCampaign,
    CPUMachine,
    PagedMemory,
    Program,
    assemble,
    cpu_checksum_program,
    cpu_matmul_program,
    cpu_sort_program,
)
from repro.cpusim.machine import (
    CODE_BASE,
    CPUFault,
    CPUHang,
    DATA_BASE,
    STACK_TOP,
    decode,
    encode,
)
from repro.errors import (
    CPUIllegalInstruction,
    CPUSegmentationFault,
    CPUSimError,
)


class TestEncoding:
    def test_roundtrip(self):
        word = encode("ADD", 3, 5, -7)
        assert decode(word) == ("ADD", 3, 5, -7)

    def test_illegal_opcode(self):
        with pytest.raises(CPUIllegalInstruction):
            decode(0xEE000000)

    def test_bad_mnemonic(self):
        with pytest.raises(CPUSimError):
            encode("FROB")

    def test_register_range(self):
        with pytest.raises(CPUSimError):
            encode("MOV", 16, 0)


class TestPagedMemory:
    def test_mapping_and_access(self):
        mem = PagedMemory()
        mem.map_range(0x4000, 10)
        mem.store(0x4005, 42)
        assert mem.load(0x4005) == 42

    def test_unmapped_faults(self):
        mem = PagedMemory()
        mem.map_range(0x4000, 10)
        with pytest.raises(CPUSegmentationFault):
            mem.load(0x9000)
        with pytest.raises(CPUSegmentationFault):
            mem.store(-5, 1)

    def test_exec_permission(self):
        mem = PagedMemory()
        mem.map_range(0x1000, 10, executable=True)
        mem.map_range(0x4000, 10)
        assert mem.load(0x1000, access="exec") == 0
        with pytest.raises(CPUSegmentationFault):
            mem.load(0x4000, access="exec")  # data is not executable

    def test_code_not_writable(self):
        mem = PagedMemory()
        mem.map_range(0x1000, 10, executable=True)
        with pytest.raises(CPUSegmentationFault):
            mem.store(0x1000, 1)


class TestMachine:
    def _run(self, listing, data=(), out=(0, 1)):
        prog = Program(code=assemble(listing), data=list(data), output_range=out,
                       name="t")
        m = CPUMachine(prog)
        m.run()
        return m

    def test_arithmetic_and_store(self):
        m = self._run(
            [
                ("LOADI", 1, 0, 6),
                ("LOADI", 2, 0, 7),
                ("MUL", 1, 2, 0),
                ("LOADI", 5, 0, DATA_BASE),
                ("ST", 1, 5, 0),
                ("HALT",),
            ],
            data=[0],
        )
        assert m.read_output() == [42.0]

    def test_call_ret_stack(self):
        m = self._run(
            [
                ("LOADI", 1, 0, 5),
                ("CALL", 0, 0, "double"),
                ("LOADI", 5, 0, DATA_BASE),
                ("ST", 1, 5, 0),
                ("HALT",),
                "double",
                ("ADD", 1, 1, 0),
                ("RET",),
            ],
            data=[0],
        )
        assert m.read_output() == [10.0]
        assert m.sp == STACK_TOP  # balanced

    def test_division_by_zero_crashes(self):
        with pytest.raises(CPUIllegalInstruction):
            self._run(
                [("LOADI", 1, 0, 5), ("LOADI", 2, 0, 0), ("DIV", 1, 2, 0), ("HALT",)]
            )

    def test_hang_on_budget(self):
        prog = Program(
            code=assemble([("JMP", 0, 0, CODE_BASE)]), data=[0], output_range=(0, 1),
            name="spin",
        )
        with pytest.raises(CPUHang):
            CPUMachine(prog).run(budget=100)

    def test_wild_jump_faults(self):
        prog = Program(
            code=assemble([("JMP", 0, 0, 0x7000)]), data=[0], output_range=(0, 1),
            name="wild",
        )
        with pytest.raises(CPUSegmentationFault):
            CPUMachine(prog).run()

    def test_fault_injection_mid_run(self):
        listing = [
            ("LOADI", 1, 0, 0),
            ("LOADI", 5, 0, DATA_BASE),
            ("LD", 2, 5, 0),
            ("ST", 2, 5, 1),
            ("HALT",),
        ]
        prog = Program(code=assemble(listing), data=[7, 0], output_range=(1, 1),
                       name="t")
        m = CPUMachine(prog)
        # flip bit 3 of the input word before it is loaded (step 2)
        m.run(fault=CPUFault(step=2, address=DATA_BASE, mask=0b1000))
        assert m.read_output() == [15.0]


class TestPrograms:
    def test_matmul_matches_numpy(self):
        prog, golden = cpu_matmul_program(seed=4)
        m = CPUMachine(prog)
        m.run()
        assert np.allclose(m.read_output(), golden, rtol=1e-6)

    def test_sort_matches_python(self):
        prog, golden = cpu_sort_program(seed=4)
        m = CPUMachine(prog)
        m.run()
        assert np.array_equal(np.array(m.read_output()), golden)

    def test_checksum_matches_python(self):
        prog, golden = cpu_checksum_program(seed=4)
        m = CPUMachine(prog)
        m.run()
        assert np.array_equal(np.array(m.read_output()), golden)

    def test_programs_have_cold_code_and_heap(self):
        prog, _ = cpu_sort_program()
        # cold tail makes code much larger than the hot path
        assert len(prog.code) > 60
        assert len(prog.data) > 100  # heap tail present


class TestCampaign:
    def test_fault_free_baseline_checked(self):
        campaign = CPUFaultCampaign(cpu_sort_program)
        assert campaign.baseline_steps > 100

    def test_outcome_ratios_sum_to_one(self):
        campaign = CPUFaultCampaign(cpu_checksum_program)
        result = campaign.run(trials_per_segment=20, seed=1)
        for segment in ("stack", "data", "code"):
            ratios = campaign_ratios = result.ratios(segment)
            assert sum(ratios.values()) == pytest.approx(1.0)

    def test_cpu_sdc_below_gpu_levels(self):
        """The Figure 1 headline: CPU SDC ratios are far below GPU's."""
        total_sdc = total = 0
        for builder in (cpu_matmul_program, cpu_sort_program, cpu_checksum_program):
            campaign = CPUFaultCampaign(builder)
            result = campaign.run(trials_per_segment=30, seed=2)
            total_sdc += sum(t.outcome == "sdc" for t in result.trials)
            total += len(result.trials)
        assert total_sdc / total < 0.15  # GPU HPC programs show 18-45%

    def test_stack_faults_can_crash(self):
        campaign = CPUFaultCampaign(cpu_matmul_program)
        result = campaign.run(trials_per_segment=40, seed=3, segments=("stack",))
        assert result.ratios("stack")["failure"] > 0.0

    def test_deterministic(self):
        c1 = CPUFaultCampaign(cpu_sort_program).run(trials_per_segment=10, seed=9)
        c2 = CPUFaultCampaign(cpu_sort_program).run(trials_per_segment=10, seed=9)
        assert [t.outcome for t in c1.trials] == [t.outcome for t in c2.trials]
