"""Bit-exactness and protocol tests for the typed NumPy backing store.

The whole differential stack assumes a device word is a 32-bit pattern
that never canonicalizes at rest: NaN payloads, denormals, -0.0 and
±inf must survive store → snapshot → restore → load, memcpy round
trips, and XOR fault injection exactly.  These properties pin that
down over random patterns, and the protocol tests pin the MemorySpace
layering itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import bits_to_float, float_to_bits
from repro.core.checkpoint import Checkpoint
from repro.cpusim.machine import DATA_BASE, PagedMemory
from repro.errors import DeviceMemoryError, GPUError
from repro.gpu.faults import inject_word_faults
from repro.gpu.memory import (
    FootprintRecordingMemory,
    GlobalMemory,
    ReplayMemoryGuard,
    ThreadFootprint,
)
from repro.kir.types import DType
from repro.memspace import MemorySpace, WordReinterpret
from repro.swifi.injector import MemoryFaultInjector

# Interesting binary32 patterns: quiet/signaling NaN payloads, ±inf,
# denormals (smallest and largest), -0.0, and exact-boundary values.
SNAN_BITS = 0x7F800001  # signaling NaN, payload 1
SNAN_PAYLOAD_BITS = 0x7FA5A5A5  # signaling NaN, nontrivial payload
QNAN_BITS = 0x7FC00001  # quiet NaN, payload 1
NEG_QNAN_BITS = 0xFFC0DEAD
DENORM_MIN_BITS = 0x00000001
DENORM_MAX_BITS = 0x007FFFFF
NEG_ZERO_BITS = 0x80000000
POS_INF_BITS = 0x7F800000
NEG_INF_BITS = 0xFF800000
FLT_MAX_BITS = 0x7F7FFFFF

SPECIAL_BITS = [
    SNAN_BITS, SNAN_PAYLOAD_BITS, QNAN_BITS, NEG_QNAN_BITS,
    DENORM_MIN_BITS, DENORM_MAX_BITS, NEG_ZERO_BITS,
    POS_INF_BITS, NEG_INF_BITS, FLT_MAX_BITS, 0x00000000, 0xFFFFFFFF,
]

word_patterns = st.one_of(
    st.sampled_from(SPECIAL_BITS),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)


def fresh_memory(nwords: int = 64) -> GlobalMemory:
    mem = GlobalMemory(capacity_words=256)
    mem.alloc("buf", nwords, DType.FLOAT32)
    return mem


class TestWordRoundTrip:
    """Random 32-bit patterns survive every path through the store."""

    @given(bits=word_patterns)
    @settings(max_examples=200, deadline=None)
    def test_store_word_load_word(self, bits):
        mem = fresh_memory()
        mem.store_word(3, bits)
        assert mem.load_word(3) == bits

    @given(bits=word_patterns)
    @settings(max_examples=200, deadline=None)
    def test_snapshot_restore_round_trip(self, bits):
        mem = fresh_memory()
        mem.store_word(5, bits)
        snap = mem.snapshot()
        mem.store_word(5, ~bits & 0xFFFFFFFF)  # clobber
        mem.restore(snap)
        assert mem.load_word(5) == bits

    @given(bits=word_patterns)
    @settings(max_examples=200, deadline=None)
    def test_memcpy_round_trip(self, bits):
        """htod of the pattern's float32 value, dtoh back: same bits."""
        mem = fresh_memory()
        host = np.array([bits], dtype=np.uint32).view(np.float32)
        mem.memcpy_htod(mem.allocations["buf"], host)
        assert mem.load_word(0) == bits
        back = mem.memcpy_dtoh(mem.allocations["buf"], count=1)
        assert back.dtype == np.float32
        assert back.view(np.uint32)[0] == bits

    @given(bits=word_patterns)
    @settings(max_examples=200, deadline=None)
    def test_float_accessor_round_trip(self, bits):
        """store_f32(load_f32(bits)) preserves bits up to NaN quieting.

        Loading reinterprets through a float64 register, which quiets a
        signaling NaN exactly as the legacy struct path did; every
        non-sNaN pattern round-trips identically.
        """
        mem = fresh_memory()
        mem.store_word(7, bits)
        value = mem.load_f32(7)
        mem.store_f32(8, value)
        assert mem.load_word(8) == float_to_bits(bits_to_float(bits))

    @given(bits=word_patterns, mask=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200, deadline=None)
    def test_inject_then_undo_is_identity(self, bits, mask):
        mem = fresh_memory()
        mem.store_word(2, bits)
        mem.inject_word_fault(2, mask)
        assert mem.load_word(2) == bits ^ mask
        mem.inject_word_fault(2, mask)
        assert mem.load_word(2) == bits


class TestSignalingNaNPayload:
    """Acceptance criterion: sNaN payloads survive the full state cycle."""

    def test_snan_survives_store_snapshot_restore_load(self):
        mem = fresh_memory()
        mem.store_word(4, SNAN_PAYLOAD_BITS)
        snap = mem.snapshot()
        mem.reset()
        mem.alloc("buf", 64, DType.FLOAT32)
        mem.restore(snap)
        # the word at rest still holds the signaling pattern bit-exactly
        assert mem.load_word(4) == SNAN_PAYLOAD_BITS
        # reading it as a float yields a NaN (quieted in the register,
        # as real hardware does — the stored word is untouched)
        assert mem.load_f32(4) != mem.load_f32(4)
        assert mem.load_word(4) == SNAN_PAYLOAD_BITS

    def test_inject_word_fault_on_nan_preserves_xored_payload(self):
        """Regression: XOR into a NaN word perturbs exactly the mask bits."""
        mem = fresh_memory()
        mem.store_word(9, QNAN_BITS)
        mem.inject_word_fault(9, 0x00000F00)
        assert mem.load_word(9) == QNAN_BITS ^ 0x00000F00
        mem.store_word(10, SNAN_PAYLOAD_BITS)
        mem.inject_word_fault(10, 1 << 31)  # flip the sign of an sNaN
        assert mem.load_word(10) == SNAN_PAYLOAD_BITS | (1 << 31)

    def test_denormal_and_negzero_survive_htod(self):
        mem = fresh_memory()
        host = np.array(
            [DENORM_MIN_BITS, DENORM_MAX_BITS, NEG_ZERO_BITS], dtype=np.uint32
        ).view(np.float32)
        mem.memcpy_htod(mem.allocations["buf"], host)
        assert [mem.load_word(i) for i in range(3)] == [
            DENORM_MIN_BITS, DENORM_MAX_BITS, NEG_ZERO_BITS,
        ]


class TestStoreSemantics:
    """The fast dtype-view paths match the struct-based reference."""

    @given(value=st.floats(allow_nan=True, allow_infinity=True, width=64))
    @settings(max_examples=300, deadline=None)
    def test_store_f32_matches_float_to_bits(self, value):
        mem = fresh_memory()
        mem.store_f32(0, value)
        assert mem.load_word(0) == float_to_bits(value)

    @given(value=st.integers(min_value=-(2**63), max_value=2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_store_i32_wraps_two_complement(self, value):
        mem = fresh_memory()
        mem.store_i32(0, value)
        assert mem.load_word(0) == value & 0xFFFFFFFF

    def test_out_of_range_store_saturates_to_inf(self):
        mem = fresh_memory()
        mem.store_f32(0, 1e300)
        assert mem.load_word(0) == POS_INF_BITS
        mem.store_f32(0, -1e300)
        assert mem.load_word(0) == NEG_INF_BITS


class TestMemorySpaceProtocol:
    """Every layer satisfies the structural protocol."""

    def test_all_layers_are_memory_spaces(self):
        mem = fresh_memory()
        recording = FootprintRecordingMemory(mem)
        guard = ReplayMemoryGuard(mem, 0, {}, {})
        paged = PagedMemory()
        for space in (mem, recording, guard, paged):
            assert isinstance(space, MemorySpace)
            assert isinstance(space, WordReinterpret)

    def test_layers_agree_with_base_memory(self):
        """A recorded or guarded store leaves the same bits as a direct one."""
        for bits in SPECIAL_BITS:
            value = bits_to_float(bits)
            direct = fresh_memory()
            direct.store_f32(1, value)
            recorded = fresh_memory()
            FootprintRecordingMemory(recorded).store_f32(1, value)
            guarded = fresh_memory()
            ReplayMemoryGuard(guarded, 0, {}, {}).store_f32(1, value)
            assert direct.load_word(1) == recorded.load_word(1) == guarded.load_word(1)

    def test_paged_memory_typed_accessors(self):
        paged = PagedMemory()
        paged.map_range(DATA_BASE, 16)
        paged.store_f32(DATA_BASE, -0.0)
        assert paged.load_word(DATA_BASE) == NEG_ZERO_BITS
        paged.store_i32(DATA_BASE + 1, -2)
        assert paged.load_i32(DATA_BASE + 1) == -2
        assert paged.load_word(DATA_BASE + 1) == 0xFFFFFFFE

    def test_error_messages_preserved(self):
        mem = fresh_memory()
        with pytest.raises(DeviceMemoryError, match="load outside device memory"):
            mem.load_f32(mem.capacity)
        with pytest.raises(DeviceMemoryError, match="store outside device memory"):
            mem.store_i32(-1, 0)
        with pytest.raises(DeviceMemoryError, match="store outside device memory"):
            FootprintRecordingMemory(mem).store_f32(mem.capacity, 1.0)
        with pytest.raises(
            DeviceMemoryError, match="fault injection outside mapped memory"
        ):
            mem.inject_word_fault(mem.used_words, 1)


class TestHtodGuard:
    """memcpy_htod rejects allocations from a different device memory."""

    def test_stale_allocation_rejected(self):
        mem_a = fresh_memory()
        mem_b = GlobalMemory(capacity_words=256)
        foreign = mem_b.alloc("buf", 64, DType.FLOAT32)
        with pytest.raises(GPUError, match="stale allocation"):
            mem_a.memcpy_htod(foreign, np.zeros(4, dtype=np.float32))

    def test_reset_invalidates_old_handles(self):
        mem = fresh_memory()
        old = mem.allocations["buf"]
        mem.reset()
        mem.alloc("buf", 64, DType.FLOAT32)
        with pytest.raises(GPUError, match="stale allocation"):
            mem.memcpy_htod(old, np.zeros(4, dtype=np.float32))


class TestAllocationBisect:
    def test_allocation_of_across_many_buffers(self):
        mem = GlobalMemory(capacity_words=4096)
        allocs = [mem.alloc(f"b{i}", 7) for i in range(40)]
        for a in allocs:
            assert mem.allocation_of(a.base) is a
            assert mem.allocation_of(a.end - 1) is a
        assert mem.allocation_of(mem.used_words) is None
        assert mem.allocation_of(-1) is None
        assert mem.allocation_of(4095) is None


class TestBulkInjection:
    def test_inject_word_faults_journaled_undo(self):
        mem = fresh_memory()
        patterns = [QNAN_BITS, DENORM_MAX_BITS, 0x12345678]
        for i, bits in enumerate(patterns):
            mem.store_word(i, bits)
        injector = MemoryFaultInjector(mem)
        new_bits = injector.inject([0, 1, 2], [0xFF, 0xFF00, 0xFF0000])
        assert list(new_bits) == [
            QNAN_BITS ^ 0xFF, DENORM_MAX_BITS ^ 0xFF00, 0x12345678 ^ 0xFF0000,
        ]
        assert injector.injected_words == 3
        injector.undo()
        assert [mem.load_word(i) for i in range(3)] == patterns

    def test_inject_word_faults_validates_all_addresses(self):
        mem = fresh_memory()
        before = mem.snapshot()
        with pytest.raises(
            DeviceMemoryError, match="fault injection outside mapped memory"
        ):
            inject_word_faults(mem, [0, mem.used_words], [1, 1])
        assert np.array_equal(mem.snapshot(), before)  # all-or-nothing

    def test_mismatched_lengths_rejected(self):
        mem = fresh_memory()
        with pytest.raises(DeviceMemoryError, match="addresses"):
            inject_word_faults(mem, [0, 1], [1])


class TestFootprintNetArrays:
    def test_net_arrays_collapse_duplicate_addresses(self):
        fp = ThreadFootprint()
        fp.stores = [(5, 10, 11), (6, 20, 21), (5, 11, 12)]
        addrs, old_bits, new_bits = fp.net_store_arrays()
        by_addr = {int(a): (int(o), int(n)) for a, o, n in zip(addrs, old_bits, new_bits)}
        # first-store old, last-store new per address
        assert by_addr == {5: (10, 12), 6: (20, 21)}

    def test_scatter_undo_matches_reverse_replay(self):
        mem = fresh_memory()
        fp = ThreadFootprint()
        rec = FootprintRecordingMemory(mem)
        rec.fp = fp
        rec.store_i32(3, 100)
        rec.store_i32(3, 200)
        rec.store_i32(4, 300)
        addrs, old_bits, _new = fp.net_store_arrays()
        mem.words[addrs] = old_bits  # vectorized undo
        assert mem.load_i32(3) == 0 and mem.load_i32(4) == 0


class TestDeviceCheckpoint:
    def test_checkpoint_captures_and_restores_device_words(self):
        mem = fresh_memory()
        mem.store_word(0, SNAN_PAYLOAD_BITS)
        mem.store_word(1, 0xDEADBEEF)
        cp = Checkpoint.capture("pre-kernel", memory=mem)
        mem.store_word(0, 0)
        mem.store_word(1, 0)
        cp.restore_device(mem)
        assert mem.load_word(0) == SNAN_PAYLOAD_BITS
        assert mem.load_word(1) == 0xDEADBEEF

    def test_host_only_checkpoint_refuses_device_restore(self):
        mem = fresh_memory()
        cp = Checkpoint.capture("host-only")
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError, match="holds no device memory"):
            cp.restore_device(mem)
