"""Vectorized engine parity: bit-identical with the scalar interpreters.

The vectorized engine's entire contract is *bit-exactness*: any launch
it serves must be indistinguishable — LaunchResult, device memory
words, control-block state, FI activation records — from the closure
and lockstep interpreters.  Every test here runs the same seeded work
through two or three engines on independent devices and compares raw
bit patterns, never tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.program import HauberkProgram
from repro.gpu.device import Device
from repro.gpu.runtime import ENGINES, GPURuntime, LaunchError
from repro.kir import parse_kernel
from repro.kir.interp.vector import (
    BAIL_HAZARD,
    FALLBACK_LIBRARY,
    OBSTACLE_SYNC,
    VectorizedKernel,
    vectorize_obstacle,
)
from repro.kir.types import DType
from repro.obs.metrics import fresh_registry, get_registry
from repro.swifi.campaign import Campaign, build_fault_specs
from repro.swifi.targets import enumerate_targets
from repro.workloads import all_workloads, get_workload

SCALAR_ENGINES = ("closure", "lockstep")
FI_MODES = ("fi", "fift")


def _launch(src_or_kernel, args, engine, grid=1, block=4, n_out=8,
            out_dtype=DType.FLOAT32, budget=2_000_000, out_init=None):
    """One launch on a fresh device; returns (LaunchResult, words)."""
    kernel = (parse_kernel(src_or_kernel)
              if isinstance(src_or_kernel, str) else src_or_kernel)
    device = Device()
    runtime = GPURuntime(device, engine=engine)
    full_args = dict(args)
    if n_out:
        out = device.memory.alloc("out", n_out, out_dtype)
        if out_init is not None:
            device.memory.memcpy_htod(out, out_init)
        full_args["out"] = out
    result = runtime.launch(kernel, grid, block, full_args, budget=budget)
    return result, device.memory.snapshot()


def _assert_engines_agree(src, args, engines=("vector",) + SCALAR_ENGINES,
                          **kw):
    results = {e: _launch(src, args, e, **kw) for e in engines}
    ref_res, ref_words = results[engines[0]]
    for engine in engines[1:]:
        res, words = results[engine]
        assert res == ref_res, f"{engines[0]} vs {engine}: {ref_res} != {res}"
        assert np.array_equal(words, ref_words), (
            f"{engines[0]} vs {engine}: memory diverged at words "
            f"{np.nonzero(words != ref_words)[0][:5]}"
        )
    return ref_res, ref_words


def _campaign_results(name, mode, engine, n=16, seed=11, bit_counts=(1, 6)):
    """A seeded full-execution campaign under one engine."""
    wl = get_workload(name)
    prog = HauberkProgram(wl)
    prog.runtime.engine = engine
    if mode == "fift":
        prog.train(seeds=[0])
    sites = enumerate_targets(wl.kernel)
    inp = wl.generate_input(0)
    specs = build_fault_specs(sites, inp.n_threads, masks_per_site=2,
                              bit_counts=bit_counts, seed=seed)[:n]
    result = Campaign(prog.trial_runner(mode, 0)).run(specs)
    return prog, result


class TestWorkloadLaunchParity:
    """Original-mode launches: every workload, engine vs engine."""

    @pytest.mark.parametrize("name", all_workloads())
    def test_vector_matches_closure_and_lockstep(self, name):
        wl = get_workload(name)
        inp = wl.generate_input(seed=7)
        outcomes = {}
        for engine in ("vector", "closure", "lockstep"):
            device = Device()
            runtime = GPURuntime(device, engine=engine)
            args, _handles = wl.setup_memory(device, inp)
            result = runtime.launch(wl.kernel, inp.grid, inp.block, args,
                                    budget=wl.hang_budget)
            outcomes[engine] = (result, device.memory.snapshot())
        res_v, words_v = outcomes["vector"]
        for engine in SCALAR_ENGINES:
            res_s, words_s = outcomes[engine]
            assert res_v == res_s, f"{name}: LaunchResult diverged vs {engine}"
            assert np.array_equal(words_v, words_s), \
                f"{name}: device memory diverged vs {engine}"

    def test_engine_validation(self):
        with pytest.raises(LaunchError):
            GPURuntime(Device(), engine="warp9")
        runtime = GPURuntime(Device())
        assert runtime.engine in ENGINES


class TestCampaignParity:
    """Seeded fi/fift campaigns: outcomes + control block, engine-exact."""

    @pytest.mark.parametrize("mode", FI_MODES)
    @pytest.mark.parametrize("name", ("CP", "PNS", "SAD", "TPACF"))
    def test_campaign_outcomes_identical(self, name, mode):
        prog_v, vec = _campaign_results(name, mode, "vector")
        prog_c, clo = _campaign_results(name, mode, "closure")
        assert vec.summary() == clo.summary()
        for a, b in zip(vec.trials, clo.trials):
            assert a.spec == b.spec
            assert a.outcome == b.outcome
            assert a.observation == b.observation
        # control-block state (alarm history, SDC bit, event log) is
        # part of the contract for detector-bearing modes
        if mode == "fift":
            assert prog_v.cb.alarm_raised == prog_c.cb.alarm_raised
            assert prog_v.cb.sdc_bit == prog_c.cb.sdc_bit
            assert list(prog_v.cb.events) == list(prog_c.cb.events)

    def test_fi_activation_records_identical(self):
        wl = get_workload("CP")
        inp = wl.generate_input(0)
        sites = enumerate_targets(wl.kernel)
        specs = build_fault_specs(sites, inp.n_threads, masks_per_site=2,
                                  bit_counts=(1, 3), seed=3)[:12]
        for spec in specs:
            runs = {}
            for engine in ("vector", "closure"):
                prog = HauberkProgram(get_workload("CP"))
                prog.runtime.engine = engine
                runs[engine] = prog.run(mode="fi", seed=0, fault=spec)
            v, c = runs["vector"], runs["closure"]
            assert v.status == c.status
            assert v.activation == c.activation
            if v.output is not None:
                assert np.array_equal(
                    np.asarray(v.output).view(np.uint64),
                    np.asarray(c.output).view(np.uint64),
                ), f"outputs diverged for {spec}"


class TestDivergenceAndLoops:
    def test_divergent_branch_parity(self):
        # odd/even lanes take different arms; nested divergent If
        src = """
        kernel div(float* out, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            float v = 0.0;
            if (tid % 2 == 0) {
                v = float(tid) * 2.0;
                if (tid > 4) { v = v + 100.0; }
            } else {
                v = 0.0 - float(tid);
            }
            if (tid < n) { out[tid] = v; }
        }
        """
        _assert_engines_agree(src, {"n": 12}, grid=4, block=4, n_out=16)

    def test_loop_drain_parity(self):
        # per-thread trip counts: lanes leave the loop at their own
        # iteration, paying the failing check exactly once
        src = """
        kernel drain(float* out, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            float acc = 0.0;
            for (int i = 0; i < tid + 1; i++) {
                acc = acc + float(i) * 0.5;
                if (acc > 6.0) { break; }
            }
            int j = 0;
            while (j < tid) {
                if (j == 3) { j = j + 2; continue; }
                acc = acc + 1.0;
                j = j + 1;
            }
            if (tid < n) { out[tid] = acc; }
        }
        """
        res, _ = _assert_engines_agree(src, {"n": 16}, grid=4, block=4,
                                       n_out=16)
        assert res.loop_cycles > 0

    def test_cross_lane_hazard_falls_back_identically(self):
        # lane tid reads the word lane tid-1 wrote: sequential
        # semantics require in-order execution, so the vector engine
        # must bail and the fallback must still be bit-identical
        fresh_registry()
        src = """
        kernel chain(float* out, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            out[tid + 1] = out[tid] + 1.0;
        }
        """
        _assert_engines_agree(src, {"n": 8}, grid=1, block=8, n_out=9,
                              engines=("vector", "closure"))
        reg = get_registry()
        assert reg.counter("repro_kir_vector_fallbacks_total").value(
            kernel="chain", reason=BAIL_HAZARD) >= 1


class TestBitPatternFidelity:
    def test_snan_denormal_payloads_roundtrip(self):
        # sNaN payloads, denormals, -0.0, infinities through the
        # vectorized gather/scatter must preserve raw bit patterns
        patterns = np.array(
            [
                0x7F800001,  # sNaN, payload 1
                0x7FBFFFFF,  # sNaN, max payload
                0xFFA5A5A5,  # negative sNaN, patterned payload
                0x7FC00001,  # qNaN with payload
                0x00000001,  # smallest denormal
                0x807FFFFF,  # largest negative denormal
                0x80000000,  # -0.0
                0x7F800000,  # +inf
                0xFF800000,  # -inf
                0x00800000,  # smallest normal
                0x3F800000,  # 1.0
                0xDEADBEEF,  # arbitrary normal bits
            ],
            dtype=np.uint32,
        )
        src = """
        kernel copybits(float* src, float* out, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            if (tid < n) { out[tid] = src[tid]; }
        }
        """
        kernel = parse_kernel(src)
        n = len(patterns)
        snaps = {}
        for engine in ("vector", "closure"):
            device = Device()
            runtime = GPURuntime(device, engine=engine)
            src_buf = device.memory.alloc("src", n, DType.FLOAT32)
            out_buf = device.memory.alloc("out", n, DType.FLOAT32)
            device.memory.words[src_buf.base:src_buf.base + n] = patterns
            runtime.launch(kernel, 1, n, {"src": src_buf, "out": out_buf,
                                          "n": n})
            snaps[engine] = device.memory.words[
                out_buf.base:out_buf.base + n].copy()
        assert np.array_equal(snaps["vector"], patterns)
        assert np.array_equal(snaps["vector"], snaps["closure"])

    def test_float_as_int_bit_parity(self):
        src = """
        kernel f2i(float* src, int* out, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            if (tid < n) { out[tid] = __float_as_int(src[tid] * 3.0); }
        }
        """
        kernel = parse_kernel(src)
        vals = np.array([0.0, -0.0, 1.5, -2.25, 3.4e38, 1e-40, float("inf")],
                        dtype=np.float32)
        snaps = {}
        for engine in ("vector", "closure"):
            device = Device()
            runtime = GPURuntime(device, engine=engine)
            src_buf = device.memory.alloc("src", len(vals), DType.FLOAT32)
            out_buf = device.memory.alloc("out", len(vals), DType.INT32)
            device.memory.memcpy_htod(src_buf, vals)
            runtime.launch(kernel, 1, len(vals),
                           {"src": src_buf, "out": out_buf, "n": len(vals)})
            snaps[engine] = device.memory.words[
                out_buf.base:out_buf.base + len(vals)].copy()
        assert np.array_equal(snaps["vector"], snaps["closure"])


class TestGatingAndMetrics:
    def test_sync_kernel_counts_obstacle_fallback(self):
        fresh_registry()
        wl = get_workload("TPACF")
        assert vectorize_obstacle(wl.kernel) == OBSTACLE_SYNC
        inp = wl.generate_input(0)
        device = Device()
        runtime = GPURuntime(device, engine="vector")
        args, _ = wl.setup_memory(device, inp)
        runtime.launch(wl.kernel, inp.grid, inp.block, args,
                       budget=wl.hang_budget)
        reg = get_registry()
        assert reg.counter("repro_kir_vector_fallbacks_total").value(
            kernel=wl.kernel.name, reason=OBSTACLE_SYNC) == 1
        assert reg.counter("repro_kir_vectorized_launches_total").value(
            kernel=wl.kernel.name) == 0

    def test_vectorized_launch_counted(self):
        fresh_registry()
        wl = get_workload("CP")
        inp = wl.generate_input(0)
        device = Device()
        runtime = GPURuntime(device, engine="vector")
        args, _ = wl.setup_memory(device, inp)
        runtime.launch(wl.kernel, inp.grid, inp.block, args,
                       budget=wl.hang_budget)
        reg = get_registry()
        assert reg.counter("repro_kir_vectorized_launches_total").value(
            kernel=wl.kernel.name) == 1

    def test_incompatible_library_counts_fallback(self):
        fresh_registry()
        prog = HauberkProgram(get_workload("CP"))
        prog.runtime.engine = "vector"
        prog.train(seeds=[0])
        prog.run(mode="fift", seed=0)  # CombinedLibrary: not vectorizable
        reg = get_registry()
        assert reg.counter("repro_kir_vector_fallbacks_total").value(
            kernel=prog.build("fift").kernel.name,
            reason=FALLBACK_LIBRARY) >= 1

    def test_vector_compile_is_cached(self):
        wl = get_workload("CP")
        runtime = GPURuntime(Device())
        prog1, obstacle1 = runtime.prepare_vector(wl.kernel)
        prog2, obstacle2 = runtime.prepare_vector(wl.kernel)
        assert obstacle1 is None and obstacle2 is None
        assert prog1 is prog2
        assert isinstance(prog1, VectorizedKernel)
