"""Control block, FT library, translator modes, and HauberkProgram tests."""

import pytest

from repro.core.controlblock import ControlBlock, DetectorConfig
from repro.core.ftlib import HauberkFTLibrary
from repro.core.program import HauberkProgram, RunStatus
from repro.core.ranges import RangeSet, ValueRange
from repro.core.translator import HauberkTranslator, TranslatorOptions
from repro.errors import ReproError
from repro.kir import kernel_to_source
from repro.swifi import FaultSpec, enumerate_targets
from repro.swifi.injector import FI_FUNC
from repro.kir.astnodes import CallStmt, walk_stmts
from repro.workloads import get_workload


class TestControlBlock:
    def _cb(self):
        cb = ControlBlock()
        cb.configure([DetectorConfig(detector=0, variable="acc")])
        cb.load_ranges({0: RangeSet(ranges=[ValueRange(0.0, 10.0)])})
        return cb

    def test_configure_and_load(self):
        cb = self._cb()
        assert cb.detectors[0].ranges.contains(5.0)
        with pytest.raises(ReproError):
            cb.load_ranges({7: RangeSet()})

    def test_alpha(self):
        cb = self._cb()
        cb.set_alpha_all(10.0)
        assert cb.detectors[0].ranges.alpha == 10.0
        with pytest.raises(ReproError):
            cb.set_alpha(9, 10.0)

    def test_device_copy_isolation(self):
        """Detection state on the device copy is lost unless copied back."""
        cb = self._cb()
        dev = cb.copy_to_device()
        lib = HauberkFTLibrary(dev)
        lib.lib_check_range(_ctx(), {}, 0, 99.0)  # out of range
        assert dev.sdc_bit
        assert not cb.sdc_bit  # host copy untouched (kernel crashed, say)
        cb.copy_from_device(dev)
        assert cb.sdc_bit and cb.alarm_raised
        assert cb.events_of_kind("range")

    def test_clear_results(self):
        cb = self._cb()
        cb.sdc_bit = True
        cb.clear_results()
        assert not cb.alarm_raised


def _ctx():
    from repro.gpu.memory import GlobalMemory
    from repro.kir.interp.evalcore import ExecContext

    return ExecContext(GlobalMemory(16))


class TestFTLibrary:
    def test_range_miss_learns_new_ranges(self):
        cb = ControlBlock()
        cb.configure([DetectorConfig(detector=0)])
        cb.load_ranges({0: RangeSet(ranges=[ValueRange(0.0, 1.0)])})
        lib = HauberkFTLibrary(cb)
        lib.lib_check_range(_ctx(), {}, 0, 50.0)
        assert cb.sdc_bit
        assert cb.updated_ranges[0].contains(50.0)  # on-line learning proposal

    def test_range_hit_is_silent(self):
        cb = ControlBlock()
        cb.configure([DetectorConfig(detector=0)])
        cb.load_ranges({0: RangeSet(ranges=[ValueRange(0.0, 1.0)])})
        lib = HauberkFTLibrary(cb)
        lib.lib_check_range(_ctx(), {}, 0, 0.5)
        assert not cb.alarm_raised

    def test_check_equal(self):
        cb = ControlBlock()
        cb.configure([DetectorConfig(detector=0)])
        lib = HauberkFTLibrary(cb)
        lib.lib_check_equal(_ctx(), {}, 0, 10, 10)
        assert not cb.alarm_raised
        lib.lib_check_equal(_ctx(), {}, 0, 7, 10)
        assert cb.events_of_kind("trip")

    def test_unconfigured_detector_raises(self):
        lib = HauberkFTLibrary(ControlBlock())
        with pytest.raises(ReproError):
            lib.lib_check_range(_ctx(), {}, 3, 1.0)

    def test_checksum_validate(self):
        cb = ControlBlock()
        lib = HauberkFTLibrary(cb)
        lib.lib_checksum_validate(_ctx(), {}, 0, 0)
        assert not cb.alarm_raised
        lib.lib_checksum_validate(_ctx(), {}, 0xDEAD, 0)
        assert cb.events_of_kind("checksum")
        lib.lib_checksum_validate(_ctx(), {}, 0, 1)
        assert cb.events_of_kind("nl_mismatch")


class TestTranslator:
    def test_all_modes_build(self):
        wl = get_workload("MRI-Q")
        builds = HauberkTranslator().build_all(wl.kernel)
        assert set(builds) == {"original", "profiler", "ft", "fi", "fift"}
        for b in builds.values():
            assert b.kernel.validated
            assert b.instrumentation_time >= 0

    def test_original_is_passthrough(self):
        wl = get_workload("CP")
        b = HauberkTranslator().build(wl.kernel, "original")
        assert kernel_to_source(b.kernel) == kernel_to_source(wl.kernel)

    def test_unknown_mode(self):
        wl = get_workload("CP")
        with pytest.raises(Exception):
            HauberkTranslator().build(wl.kernel, "bogus")

    def test_fift_hooks_carry_original_site_ids(self):
        wl = get_workload("CP")
        translator = HauberkTranslator()
        fi = translator.build(wl.kernel, "fi")
        fift = translator.build(wl.kernel, "fift")
        def hook_sites(kernel):
            return sorted(
                s.args[0].value
                for s, _ in walk_stmts(kernel.body)
                if isinstance(s, CallStmt) and s.func == FI_FUNC
            )
        assert hook_sites(fi.kernel) == hook_sites(fift.kernel)
        original_sites = sorted(s.site for s in enumerate_targets(wl.kernel))
        assert hook_sites(fi.kernel) == original_sites

    def test_fift_hook_precedes_detector_gadget(self):
        """The fault must land before the checksum/accumulation reads."""
        wl = get_workload("CP")
        fift = HauberkTranslator().build(wl.kernel, "fift")
        text = kernel_to_source(fift.kernel)
        lines = text.splitlines()
        # find the definition of coorx and check ordering of what follows
        i = next(n for n, l in enumerate(lines) if "float coorx =" in l)
        following = "\n".join(lines[i + 1 : i + 3])
        assert "__hauberk_fi" in lines[i + 1]
        assert "__chk" in following

    def test_nl_only_and_l_only_options(self):
        wl = get_workload("CP")
        nl = HauberkTranslator(TranslatorOptions(enable_loop=False)).build(wl.kernel, "ft")
        assert nl.loop_info is None and nl.nonloop_info is not None
        lonly = HauberkTranslator(TranslatorOptions(enable_nonloop=False)).build(wl.kernel, "ft")
        assert lonly.loop_info is not None and lonly.nonloop_info is None


class TestHauberkProgram:
    def test_training_prevents_false_alarms(self):
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        prog.train(seeds=[0, 1, 2])
        for seed in (0, 1, 2):  # same data as training
            result = prog.run(mode="ft", seed=seed)
            assert result.status is RunStatus.OK
            assert not result.alarm

    def test_untrained_detectors_alarm(self):
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        prog.build("ft")
        result = prog.run(mode="ft", seed=0)
        assert result.alarm  # empty range sets admit nothing

    def test_fault_requires_fi_mode(self):
        wl = get_workload("CP")
        prog = HauberkProgram(wl)
        with pytest.raises(ReproError):
            prog.run(mode="ft", fault=FaultSpec(site=0, mask=1))

    def test_detection_of_large_fault(self):
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        prog.train(seeds=[0, 1])
        site = next(
            s for s in enumerate_targets(wl.kernel)
            if s.name == "qr" and s.kind == "assign"
        )
        result = prog.run(
            mode="fift", seed=0,
            fault=FaultSpec(site=site.site, mask=1 << 29, thread=3,
                            occurrence=wl.numk),
        )
        assert result.status is RunStatus.OK
        assert result.activation is not None
        assert result.alarm  # exponent-bit corruption of the accumulator

    def test_kernel_time_includes_cb_overhead(self):
        wl = get_workload("CP")
        prog = HauberkProgram(wl)
        prog.train(seeds=[0])
        inp = wl.generate_input(0)
        t_orig = prog.measure_time("original", inp=inp)
        t_ft = prog.measure_time("ft", inp=inp)
        assert t_ft > t_orig

    def test_trial_runner_contract(self):
        wl = get_workload("PNS")
        prog = HauberkProgram(wl)
        prog.train(seeds=[0])
        runner = prog.trial_runner("fift")
        clean = runner(None)
        assert clean.output_ok and not clean.failure
