"""Intermittent (burst) fault model tests (Section II.A, Figure 3b)."""

import numpy as np
import pytest

from repro.core.program import HauberkProgram
from repro.errors import InjectionError
from repro.swifi import FaultSpec, enumerate_targets
from repro.workloads import get_workload
from repro.workloads.graphics import OceanWorkload, frame_corruption_stats


class TestBurstSpec:
    def test_defaults_transient(self):
        spec = FaultSpec(site=0, mask=1)
        assert spec.burst == 1 and not spec.is_intermittent

    def test_burst_validation(self):
        with pytest.raises(InjectionError):
            FaultSpec(site=0, mask=1, burst=0)

    def test_intermittent_flag(self):
        assert FaultSpec(site=0, mask=1, burst=100).is_intermittent


class TestBurstInjection:
    def test_burst_corrupts_multiple_occurrences(self):
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl)
        site = next(
            s for s in enumerate_targets(wl.kernel)
            if s.name == "arg" and s.in_loop
        )
        transient = FaultSpec(site=site.site, mask=1 << 27, thread=2, occurrence=2)
        burst = FaultSpec(site=site.site, mask=1 << 27, thread=2, occurrence=2,
                          burst=10)
        r1 = prog.run(mode="fi", seed=0, fault=transient)
        r2 = prog.run(mode="fi", seed=0, fault=burst)
        assert r1.activation.n_injections == 1
        assert r2.activation.n_injections == 10
        golden = wl.golden(wl.generate_input(0))
        # the burst corrupts the output at least as much as the transient
        assert (
            np.abs(r2.output - golden).max()
            >= np.abs(r1.output - golden).max() - 1e-9
        )

    def test_burst_on_graphics_is_noticeable(self):
        """An intermittent fault streaks the frame (Figure 3b, FI route)."""
        wl = OceanWorkload(width=24, height=16)
        prog = HauberkProgram(wl)
        inp = wl.generate_input(0)
        golden = wl.golden(inp)
        site = next(
            s for s in enumerate_targets(wl.kernel) if s.name == "h" and s.in_loop
        )
        transient = FaultSpec(site=site.site, mask=1 << 23, thread=10, occurrence=3)
        r1 = prog.run(mode="fi", inp=inp, fault=transient)
        assert wl.spec.check(r1.output, golden)  # one pixel: unnoticeable
        # corrupt every thread's height accumulation via a wide per-thread
        # burst on many threads (emulating a lasting FPU fault): sweep the
        # single-fault model by running per-thread bursts on one frame
        corrupted = np.array(golden)
        for t in range(0, inp.n_threads, 2):
            fault = FaultSpec(site=site.site, mask=1 << 23, thread=t,
                              occurrence=1, burst=wl.nwaves)
            r = prog.run(mode="fi", inp=inp, fault=fault)
            pixel = np.abs(r.output - golden).argmax()
            corrupted[pixel] = r.output[pixel]
        assert not wl.spec.check(corrupted, golden)  # stripe: noticeable
        stats = frame_corruption_stats(corrupted, golden)
        assert stats.corrupted_fraction > 0.2
