"""Analysis tests: dataflow sites, loops/trip counts, dependency, liveness."""


from repro.kir import parse_kernel
from repro.kir.analysis import (
    collect_sites,
    derive_trip_count,
    find_loops,
    live_intervals,
    names_read_stmt,
    names_written_stmt,
    register_pressure,
    select_loop_targets,
)
from repro.kir.analysis.dependency import (
    build_loop_dependency_graph,
    cumulative_backward_dependency,
)
from repro.kir.analysis.loops import top_level_loops
from repro.kir.interp.compiler import compile_expr


LOOP_SRC = """
kernel k(float* data, int n, float* out) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float base = float(tid) * 0.5;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        float x = data[i];
        float y = x * x + base;
        float z = y / (x + 1.0);
        acc = acc + z;
    }
    out[tid] = acc;
}
"""


class TestSites:
    def test_site_table_structure(self):
        k = parse_kernel(LOOP_SRC)
        sites = collect_sites(k)
        names = [s.name for s in sites]
        assert names[:3] == ["data", "n", "out"]  # params first
        by_name = {}
        for site in sites:
            by_name.setdefault(site.name, site)  # first (declaring) site wins
        assert by_name["x"].in_loop
        assert not by_name["base"].in_loop
        assert by_name["acc"].kind == "decl"

    def test_self_accumulator_detected(self):
        k = parse_kernel(LOOP_SRC)
        sites = {s.name: s for s in collect_sites(k) if s.kind == "assign"}
        assert sites["acc"].self_accumulating

    def test_self_accumulator_requires_outer_decl(self):
        src = """
kernel k(int n) {
    for (int i = 0; i < n; i++) {
        int local = 0;
        local = local + 1;
    }
}
"""
        sites = collect_sites(parse_kernel(src))
        assigns = [s for s in sites if s.kind == "assign" and s.name == "local"]
        assert assigns and not assigns[0].self_accumulating

    def test_reads_and_ops_counted(self):
        k = parse_kernel(LOOP_SRC)
        z = next(s for s in collect_sites(k) if s.name == "z")
        assert z.reads == {"y", "x"}
        assert z.n_ops == 2  # / and +

    def test_read_write_sets(self):
        k = parse_kernel(LOOP_SRC)
        loop = k.body[3]
        assert "acc" in names_written_stmt(loop)
        assert "data" in names_read_stmt(loop)
        assert "out" not in names_read_stmt(loop)


class TestLoops:
    def test_simple_trip_count(self):
        k = parse_kernel("kernel k(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } }")
        loop = k.body[1]
        expr = derive_trip_count(loop)
        assert expr is not None
        fn = compile_expr(_validated_expr(k, expr))
        assert fn({"n": 7}, None) == 7

    def test_le_and_strided(self):
        k = parse_kernel(
            "kernel k(int n) { int s = 0; for (int i = 2; i <= n; i = i + 3) { s += i; } }"
        )
        expr = derive_trip_count(k.body[1])
        fn = compile_expr(_validated_expr(k, expr))
        # i = 2,5,8,...; for n=8 -> 3 iterations
        assert fn({"n": 8}, None) == 3

    def test_clamps_to_zero(self):
        k = parse_kernel("kernel k(int n) { int s = 0; for (int i = 0; i < n; i++) { s += 1; } }")
        fn = compile_expr(_validated_expr(k, derive_trip_count(k.body[1])))
        assert fn({"n": -5}, None) == 0

    def test_rejects_modified_bound(self):
        k = parse_kernel(
            """
kernel k(int n) {
    int m = n;
    for (int i = 0; i < m; i++) { m = m - 1; }
}
"""
        )
        assert derive_trip_count(k.body[1]) is None

    def test_rejects_break(self):
        k = parse_kernel(
            """
kernel k(int n) {
    for (int i = 0; i < n; i++) { if (i == 2) { break; } }
}
"""
        )
        assert derive_trip_count(k.body[0]) is None

    def test_rejects_nonconstant_step(self):
        k = parse_kernel(
            "kernel k(int n, int s) { for (int i = 0; i < n; i = i + s) { int x = i; } }"
        )
        assert derive_trip_count(k.body[0]) is None

    def test_loop_forest(self):
        k = parse_kernel(
            """
kernel k(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) { int a = i; }
    }
    while (n > 0) { int b = 1; break; }
}
"""
        )
        loops = find_loops(k)
        assert len(loops) == 3
        tops = top_level_loops(k)
        assert len(tops) == 2
        outer = next(l for l in tops if l.is_for)
        assert len(outer.children) == 1


class TestDependency:
    def test_cp_figure9_ordering(self):
        from repro.workloads import get_workload

        k = get_workload("CP").kernel
        loop = top_level_loops(k)[0]
        graph = build_loop_dependency_graph(k, loop)
        scores = {
            info.name: cumulative_backward_dependency(graph, sid)
            for sid, info in graph.sites.items()
        }
        assert scores["energyx2"] > scores["energyx1"]
        selection = select_loop_targets(k, loop, maxvar=1)
        assert selection.selected_names == ["energyx2"]

    def test_forward_dependents_excluded(self):
        src = """
kernel k(float* d, int n, float* o) {
    float total = 0.0;
    for (int i = 0; i < n; i++) {
        float a = d[i];
        float b = a * 2.0;
        total = total + b;
    }
    o[0] = total;
}
"""
        k = parse_kernel(src)
        loop = top_level_loops(k)[0]
        sel = select_loop_targets(k, loop, maxvar=3)
        # total (self-acc) absorbs a and b, which feed it
        assert sel.selected_names[0] == "total"
        assert "a" not in sel.selected_names
        assert "b" not in sel.selected_names

    def test_maxvar_two_picks_independent(self):
        src = """
kernel k(float* d, int n, float* o) {
    float s1 = 0.0;
    float s2 = 0.0;
    for (int i = 0; i < n; i++) {
        s1 = s1 + d[i];
        s2 = s2 + d[i] * d[i];
    }
    o[0] = s1;
    o[1] = s2;
}
"""
        k = parse_kernel(src)
        loop = top_level_loops(k)[0]
        sel = select_loop_targets(k, loop, maxvar=2)
        assert set(sel.selected_names) == {"s1", "s2"}

    def test_pointer_sites_not_protectable(self):
        src = """
kernel k(float* d, int n, float* o) {
    for (int i = 0; i < n; i++) {
        float* p = d + i;
        float v = p[0];
        o[i] = v;
    }
}
"""
        k = parse_kernel(src)
        loop = top_level_loops(k)[0]
        sel = select_loop_targets(k, loop, maxvar=1)
        assert sel.selected_names != ["p"]


class TestLiveness:
    def test_pressure_grows_with_live_vars(self):
        small = parse_kernel("kernel k(int n) { int a = n; int b = a; int c = b; }")
        wide = parse_kernel(
            """
kernel k(int n, int* o) {
    int a = n; int b = n; int c = n; int d = n; int e = n;
    o[0] = a + b + c + d + e;
}
"""
        )
        assert register_pressure(wide) > register_pressure(small)

    def test_loop_extends_liveness(self):
        k = parse_kernel(
            """
kernel k(int n, int* o) {
    int before = n * 2;
    for (int i = 0; i < n; i++) { o[i] = before; }
}
"""
        )
        intervals = {iv.name: iv for iv in live_intervals(k)}
        assert intervals["before"].length >= 2

    def test_duplication_raises_pressure(self):
        base = parse_kernel(
            "kernel k(int n, int* o) { int a = n; int b = a + 1; o[0] = a + b; }"
        )
        dup = parse_kernel(
            """
kernel k(int n, int* o) {
    int a = n; int a2 = n;
    int b = a + 1; int b2 = a2 + 1;
    o[0] = a + b;
    o[1] = a2 + b2;
}
"""
        )
        assert register_pressure(dup) > register_pressure(base)


def _validated_expr(kernel, expr):
    """Type a synthesized expression in the kernel's parameter scope."""
    from repro.kir.validate import _Scope, _Validator

    v = _Validator(kernel)
    scope = _Scope()
    for p in kernel.params:
        scope.names[p.name] = p.dtype
    v.expr(expr, scope)
    return expr


class TestTripCountExtensions:
    """Forms from the paper's Section V.B text beyond the basic pattern."""

    def _count(self, src, loop_index, env):
        k = parse_kernel(src)
        loop = [s for s in k.body if hasattr(s, "update")][loop_index]
        expr = derive_trip_count(loop)
        assert expr is not None
        return compile_expr(_validated_expr(k, expr))(env, None)

    def test_conjunction_bound_is_minimum(self):
        src = """
kernel k(int a, int b) {
    int s = 0;
    for (int i = 0; (i < a) && (i < b); i++) { s += i; }
}
"""
        assert self._count(src, 0, {"a": 9, "b": 5}) == 5
        assert self._count(src, 0, {"a": 2, "b": 7}) == 2

    def test_decreasing_loop(self):
        src = """
kernel k(int n) {
    int s = 0;
    for (int i = n; i > 0; i = i - 1) { s += i; }
}
"""
        assert self._count(src, 0, {"n": 6}) == 6

    def test_decreasing_with_stride_and_ge(self):
        src = """
kernel k(int n) {
    int s = 0;
    for (int i = n; i >= 2; i = i - 3) { s += i; }
}
"""
        # i = 10, 7, 4 -> 3 iterations (stops before 1)
        assert self._count(src, 0, {"n": 10}) == 3

    def test_flipped_comparison_spelling(self):
        src = """
kernel k(int n) {
    int s = 0;
    for (int i = 0; n > i; i++) { s += i; }
}
"""
        assert self._count(src, 0, {"n": 4}) == 4

    def test_step_on_left(self):
        src = """
kernel k(int n) {
    int s = 0;
    for (int i = 0; i < n; i = 2 + i) { s += i; }
}
"""
        assert self._count(src, 0, {"n": 7}) == 4

    def test_mismatched_direction_rejected(self):
        k = parse_kernel(
            "kernel k(int n) { for (int i = 0; i > n; i++) { int x = i; } }"
        )
        assert derive_trip_count(k.body[0]) is None

    def test_mixed_conjunction_rejected(self):
        k = parse_kernel(
            "kernel k(int a, int b) { for (int i = 0; (i < a) && (i > b); i++) { int x = i; } }"
        )
        assert derive_trip_count(k.body[0]) is None
