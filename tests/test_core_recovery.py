"""Recovery engine (Figure 11), guardian, BIST, checkpoint tests."""

import numpy as np
import pytest

from repro.core.bist import run_bist
from repro.core.checkpoint import Checkpoint, CheckpointLibrary
from repro.core.guardian import Guardian
from repro.core.program import HauberkProgram, RunStatus
from repro.core.recovery import (
    AlphaController,
    DeviceCheckpointer,
    FalsePositiveMonitor,
    RecoveryEngine,
)
from repro.errors import RecoveryError, UnsupportedSoftwareError
from repro.gpu.cluster import GPUNode
from repro.gpu.device import Device
from repro.swifi import FaultSpec, enumerate_targets
from repro.workloads import get_workload


def _trained_program(name="MRI-Q", node=None):
    wl = get_workload(name)
    device = node.healthy_device() if node else None
    prog = HauberkProgram(wl, device=device)
    prog.train(seeds=[0, 1, 2])
    return prog


def _acc_fault(prog, mask=1 << 29, thread=3, occurrence=None):
    """Exponent-bit fault on the accumulator's *last* definition.

    Hitting the final accumulation moves the checked average by orders
    of magnitude in either direction, so the range detector must fire.
    """
    site = next(
        s for s in enumerate_targets(prog.workload.kernel)
        if s.name == "qr" and s.kind == "assign"
    )
    occ = occurrence if occurrence is not None else prog.workload.numk
    return FaultSpec(site=site.site, mask=mask, thread=thread, occurrence=occ)


def _crash_fault(prog, thread=0):
    site = next(
        s for s in enumerate_targets(prog.workload.kernel) if s.name == "x"
    )
    return FaultSpec(site=site.site, mask=1 << 30, thread=thread, occurrence=1)


class TestAlphaController:
    def test_raises_on_high_fp(self):
        c = AlphaController()
        assert c.adjust(1.0, 0.5) == 10.0
        assert c.adjust(10.0, 0.2) == 100.0

    def test_lowers_on_low_fp(self):
        c = AlphaController()
        assert c.adjust(10.0, 0.01) == 1.0
        assert c.adjust(1.0, 0.01) == 1.0  # floor at 1

    def test_dead_band(self):
        c = AlphaController()
        assert c.adjust(10.0, 0.07) == 10.0

    def test_invalid_thresholds(self):
        with pytest.raises(RecoveryError):
            AlphaController(high=0.01, low=0.5)


class TestFalsePositiveMonitor:
    def test_window(self):
        m = FalsePositiveMonitor(window=3)
        for fp in (True, True, False, False):
            m.record(fp)
        assert m.ratio == pytest.approx(1 / 3)

    def test_empty(self):
        assert FalsePositiveMonitor().ratio == 0.0


class TestRecoveryFlowchart:
    def test_clean_run(self):
        prog = _trained_program()
        engine = RecoveryEngine(prog)
        inp = prog.workload.generate_input(0)
        result = engine.execute(inp, lambda i: None)
        assert result.verdict == "clean"
        assert result.runs == 1
        assert prog.workload.spec.check(result.output, prog.workload.golden(inp))

    def test_transient_sdc_retried(self):
        prog = _trained_program()
        engine = RecoveryEngine(prog)
        inp = prog.workload.generate_input(0)
        fault = _acc_fault(prog)
        result = engine.execute(inp, lambda i: fault if i == 0 else None)
        assert result.verdict == "transient_sdc"
        assert result.runs == 2
        # the retry's output is correct
        assert prog.workload.spec.check(result.output, prog.workload.golden(inp))

    def test_false_alarm_updates_ranges(self):
        prog = _trained_program()
        # sabotage the ranges so a clean value alarms deterministically
        from repro.core.ranges import RangeSet, ValueRange

        for det in prog.cb.detectors.values():
            det.ranges = RangeSet(ranges=[ValueRange(1e8, 1e9)])
        engine = RecoveryEngine(prog)
        inp = prog.workload.generate_input(0)
        result = engine.execute(inp, lambda i: None)
        assert result.verdict == "false_alarm"
        assert result.ranges_updated
        assert engine.monitor.ratio == 1.0
        # learned ranges absorbed the observed value: next run is quiet
        follow_up = engine.execute(inp, lambda i: None)
        assert follow_up.verdict == "clean"

    def test_permanent_fault_migrates(self):
        node = GPUNode(num_devices=2)
        prog = _trained_program(node=node)
        first_device = prog.device
        first_device.defect = "register"  # BIST will fail on this device
        engine = RecoveryEngine(prog, node=node)
        inp = prog.workload.generate_input(0)
        def fault_source(i):
            # the fault persists (with hardware-typical variation in when
            # it strikes) as long as we run on the defective device
            if prog.device is not first_device:
                return None
            return _acc_fault(prog, occurrence=prog.workload.numk - i % 3)

        result = engine.execute(inp, fault_source)
        assert result.verdict == "hardware_fault"
        assert result.migrated
        assert prog.device is not first_device
        assert not first_device.enabled
        assert prog.workload.spec.check(result.output, prog.workload.golden(inp))

    def test_repeated_crash_on_defective_device_migrates(self):
        node = GPUNode(num_devices=2)
        prog = _trained_program(node=node)
        bad = prog.device
        bad.defect = "fpu"
        engine = RecoveryEngine(prog, node=node)
        inp = prog.workload.generate_input(0)
        crash = _crash_fault(prog)

        def fault_source(i):
            return crash if prog.device is bad else None

        result = engine.execute(inp, fault_source)
        assert result.verdict == "clean"
        assert result.migrated

    def test_repeated_crash_on_healthy_device_is_software(self):
        prog = _trained_program()
        engine = RecoveryEngine(prog, node=GPUNode(num_devices=2))
        inp = prog.workload.generate_input(0)
        crash = _crash_fault(prog)
        with pytest.raises(UnsupportedSoftwareError):
            engine.execute(inp, lambda i: crash)  # crashes forever, BIST passes

    def test_recalibrate_alpha(self):
        prog = _trained_program()
        engine = RecoveryEngine(prog)
        for _ in range(10):
            engine.monitor.record(True)
        alpha = engine.recalibrate_alpha()
        assert alpha == 10.0
        assert all(d.ranges.alpha == 10.0 for d in prog.cb.detectors.values())


class TestGuardian:
    class _FakeResult:
        def __init__(self, status, steps=1000):
            self.status = status
            self.failure_reason = "x"
            self.launch = type("L", (), {"max_thread_steps": steps})()

    def test_success_records_baseline(self):
        g = Guardian(node=GPUNode(num_devices=1))
        result, report = g.supervise(
            lambda device, budget: self._FakeResult(RunStatus.OK, steps=500)
        )
        assert report.attempts == 1
        assert g.prev_steps == 500
        assert g.next_budget() == max(5000, g.min_hang_budget)

    def test_hang_then_success(self):
        calls = []

        def launch(device, budget):
            calls.append(budget)
            if len(calls) == 1:
                return self._FakeResult(RunStatus.HANG)
            return self._FakeResult(RunStatus.OK)

        g = Guardian(node=GPUNode(num_devices=2))
        result, report = g.supervise(launch)
        assert report.hang_kills == 1
        assert report.restarts == 1
        assert result.status is RunStatus.OK

    def test_double_failure_triggers_bist_and_migration(self):
        node = GPUNode(num_devices=2)
        node.devices[0].defect = "alu"
        seen_devices = []

        def launch(device, budget):
            seen_devices.append(device.device_id)
            if device.defect:
                return self._FakeResult(RunStatus.CRASH)
            return self._FakeResult(RunStatus.OK)

        g = Guardian(node=node)
        result, report = g.supervise(launch)
        assert report.bist_runs == 1
        assert report.migrations == 1
        assert result.status is RunStatus.OK
        assert len(set(seen_devices)) == 2

    def test_double_failure_healthy_device_raises(self):
        g = Guardian(node=GPUNode(num_devices=2))
        with pytest.raises(UnsupportedSoftwareError):
            g.supervise(lambda device, budget: self._FakeResult(RunStatus.CRASH))

    def test_gives_up_after_max_attempts(self):
        g = Guardian(node=GPUNode(num_devices=2), max_attempts=3)
        calls = []

        def launch(device, budget):
            calls.append(1)
            if len(calls) % 2:
                return self._FakeResult(RunStatus.HANG)
            return self._FakeResult(RunStatus.CRASH)

        with pytest.raises((RecoveryError, UnsupportedSoftwareError)):
            g.supervise(launch)


class TestBIST:
    def test_healthy_device_passes(self):
        assert run_bist(Device())

    @pytest.mark.parametrize("defect", ["alu", "fpu", "register"])
    def test_defective_device_fails(self, defect):
        device = Device()
        device.defect = defect
        assert not run_bist(device)

    def test_runs_on_disabled_device(self):
        device = Device()
        device.enabled = False
        assert run_bist(device)
        assert not device.enabled  # restored


class TestCheckpoint:
    def test_capture_and_restore(self):
        arr = np.arange(4.0)
        cp = Checkpoint.capture("k0", arrays={"a": arr}, scalars={"n": 4},
                                extra={"cb": {"x": 1}})
        arr[0] = 99.0  # mutate after capture
        restored = cp.restore_arrays()
        assert restored["a"][0] == 0.0
        assert cp.restore_extra("cb") == {"x": 1}
        with pytest.raises(RecoveryError):
            cp.restore_extra("nope")

    def test_library_bounded_stack(self):
        lib = CheckpointLibrary(capacity=2)
        for i in range(3):
            lib.save(Checkpoint.capture(f"t{i}"))
        assert len(lib) == 2
        assert lib.latest().tag == "t2"
        assert lib.find("t1").tag == "t1"
        with pytest.raises(RecoveryError):
            lib.find("t0")

    def test_empty_library(self):
        with pytest.raises(RecoveryError):
            CheckpointLibrary().latest()
        with pytest.raises(RecoveryError):
            CheckpointLibrary(capacity=0)


class TestDeviceCheckpointer:
    def test_checkpoint_restore_heals_corrupted_device_state(self):
        prog = _trained_program()
        inp = prog.workload.generate_input(0)
        prog.workload.setup_memory(prog.device, inp)
        ckpt = DeviceCheckpointer(prog)
        cp = ckpt.checkpoint()
        assert cp.tag == "kernel-boundary-1"
        memory = prog.device.memory
        before = memory.snapshot()
        memory.inject_word_fault(0, 0xFFFFFFFF)  # simulated corruption
        assert not np.array_equal(memory.snapshot(), before)
        ckpt.restore(cp)
        assert np.array_equal(memory.snapshot(), before)

    def test_guardian_supervise_accepts_checkpointer(self):
        prog = _trained_program()
        inp = prog.workload.generate_input(0)
        prog.workload.setup_memory(prog.device, inp)
        ckpt = DeviceCheckpointer(prog)
        lib = CheckpointLibrary()
        guardian = Guardian(checkpoints=lib)
        guardian.node.devices[0] = prog.device

        def launch_fn(device, budget):
            result = prog.run(mode="ft", inp=inp)
            return result

        result, report = guardian.supervise(
            launch_fn, checkpoint_fn=ckpt.checkpoint, restore_fn=ckpt.restore
        )
        assert result.status is RunStatus.OK
        assert len(lib) == 1 and lib.latest().device_words is not None
