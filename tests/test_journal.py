"""Durable journal and resume tests: crash-tolerant campaign state.

The contract under test (``repro.swifi.journal`` + ``run_campaign``):
every classified trial is durably journaled the moment it exists, and a
campaign killed mid-run and resumed with ``CampaignOptions(resume=dir)``
produces a :class:`CampaignResult` bit-identical to an uninterrupted
run — for any worker count and with differential replay on or off.
Interruption is simulated by truncating the journal to a prefix, which
is exactly the state a ``SIGKILL`` leaves behind (plus, in the torn-tail
tests, half a record).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.program import HauberkProgram
from repro.errors import InjectionError
from repro.exec import RetryPolicy, fork_available
from repro.swifi import (
    CampaignJournal,
    CampaignOptions,
    FaultSpec,
    Outcome,
    campaign_fingerprint,
    run_campaign,
    spec_fingerprint,
)
from repro.swifi.campaign import TrialObservation

from test_parallel_campaign import TinyWorkload, _tiny_specs

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

FAST_RETRY = RetryPolicy(max_deaths=2, backoff_base=0.001, backoff_max=0.002)


def _journal_path(root) -> str:
    (entry,) = [d for d in os.listdir(root)
                if os.path.isdir(os.path.join(root, d))]
    return os.path.join(root, entry, "journal.jsonl")


def _truncate_journal(root, keep: int) -> None:
    """Keep the first ``keep`` records — the state a kill leaves behind."""
    path = _journal_path(root)
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines[:keep])


def _assert_identical(a, b):
    assert a.summary() == b.summary()
    assert [t.outcome for t in a.trials] == [t.outcome for t in b.trials]
    assert [t.observation for t in a.trials] == \
        [t.observation for t in b.trials]
    assert [t.spec for t in a.trials] == [t.spec for t in b.trials]


# -- fingerprints ---------------------------------------------------------


class TestFingerprints:
    def test_spec_fingerprint_stable_and_sensitive(self):
        spec = FaultSpec(site=3, mask=5, thread=1, occurrence=2)
        assert spec_fingerprint(spec) == spec_fingerprint(spec)
        other = FaultSpec(site=3, mask=5, thread=1, occurrence=3)
        assert spec_fingerprint(spec) != spec_fingerprint(other)

    def test_campaign_fingerprint_covers_plan_and_seed(self):
        wl, specs = _tiny_specs()
        prog = HauberkProgram(wl)
        fp1, meta = campaign_fingerprint(prog, specs, "fi", 0)
        fp2, _ = campaign_fingerprint(HauberkProgram(TinyWorkload()),
                                      specs, "fi", 0)
        assert fp1 == fp2  # same ingredients, same fingerprint
        assert meta["components"]["workload"] == "TINY"
        fp3, _ = campaign_fingerprint(prog, specs, "fi", 1)
        assert fp3 != fp1  # seed participates
        fp4, _ = campaign_fingerprint(prog, specs[:-1], "fi", 0)
        assert fp4 != fp1  # plan participates

    def test_runner_campaigns_fingerprint_plan_only(self):
        specs = [FaultSpec(site=1, mask=1, thread=0, occurrence=1)]
        fp, meta = campaign_fingerprint(None, specs, "fi", 0)
        assert meta["components"]["workload"] == "<runner>"
        assert fp


# -- journal mechanics ----------------------------------------------------


class TestJournalMechanics:
    def test_campaign_writes_one_record_per_trial(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        with open(_journal_path(root), encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        assert len(records) == len(specs)
        assert sorted(r["i"] for r in records) == list(range(len(specs)))
        assert all(r["dg"] for r in records)

    def test_meta_json_written(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        meta_path = os.path.join(os.path.dirname(_journal_path(root)),
                                 "meta.json")
        meta = json.loads(open(meta_path, encoding="utf-8").read())
        fp, _ = campaign_fingerprint(
            HauberkProgram(TinyWorkload()), specs, "fi", 0
        )
        assert meta["fingerprint"] == fp

    def test_run_dir_without_resume_truncates(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        options = CampaignOptions(workers=1, run_dir=root)
        run_campaign(HauberkProgram(wl), specs, mode="fi", options=options)
        run_campaign(HauberkProgram(TinyWorkload()), specs, mode="fi",
                     options=options)
        with open(_journal_path(root), encoding="utf-8") as fh:
            assert len(fh.readlines()) == len(specs)  # not doubled

    def test_fingerprint_mismatch_raises(self, tmp_path):
        directory = tmp_path / "runs" / "feedfeedfeedfeed"
        directory.mkdir(parents=True)
        (directory / "meta.json").write_text(
            json.dumps({"fingerprint": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(InjectionError, match="fingerprint mismatch"):
            CampaignJournal.open(
                str(tmp_path / "runs"), "feedfeedfeedfeed" + "0" * 48,
                {"fingerprint": "x"}, resume=True,
            )

    def test_torn_tail_line_is_dropped(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        path = _journal_path(root)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        # a kill mid-write leaves half a record; a flipped byte leaves a
        # syntactically valid record with a digest mismatch
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:3])
            fh.write(lines[3][: len(lines[3]) // 2])
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=1, resume=root),
        )
        baseline = run_campaign(HauberkProgram(TinyWorkload()), specs,
                                mode="fi", options=CampaignOptions(workers=1))
        _assert_identical(resumed, baseline)

    def test_digest_mismatch_line_is_dropped(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        path = _journal_path(root)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        corrupted = json.loads(lines[0])
        corrupted["outcome"] = "masked" \
            if corrupted["outcome"] != "masked" else "undetected"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(corrupted) + "\n")
            fh.writelines(lines[1:])
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=1, resume=root),
        )
        baseline = run_campaign(HauberkProgram(TinyWorkload()), specs,
                                mode="fi", options=CampaignOptions(workers=1))
        _assert_identical(resumed, baseline)  # record re-executed, not trusted


# -- kill/resume parity ---------------------------------------------------


class TestResumeParity:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("differential", [False, True])
    def test_killed_and_resumed_equals_uninterrupted(
        self, tmp_path, workers, differential
    ):
        if workers > 1 and not fork_available():
            pytest.skip("requires the fork start method")
        wl, specs = _tiny_specs()
        baseline = run_campaign(
            HauberkProgram(wl), specs, mode="fi",
            options=CampaignOptions(workers=workers,
                                    differential=differential),
        )
        root = str(tmp_path / "runs")
        run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=workers,
                                    differential=differential, run_dir=root),
        )
        _truncate_journal(root, keep=len(specs) // 2)  # the "kill"
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=workers,
                                    differential=differential, resume=root),
        )
        _assert_identical(resumed, baseline)

    def test_resume_skips_journaled_trials(self, tmp_path):
        specs = [FaultSpec(site=s, mask=1, thread=0, occurrence=1)
                 for s in range(6)]
        root = str(tmp_path / "runs")
        executed = []

        def factory():
            def runner(spec):
                executed.append(spec.site)
                return TrialObservation(
                    failure=False, detected=False, output_ok=True,
                    activated=True,
                )

            return runner

        run_campaign(None, specs, runner_factory=factory,
                     options=CampaignOptions(workers=1, run_dir=root))
        assert executed == list(range(6))
        _truncate_journal(root, keep=4)
        executed.clear()
        resumed = run_campaign(None, specs, runner_factory=factory,
                               options=CampaignOptions(workers=1, resume=root))
        assert executed == [4, 5]  # journaled prefix replayed, not re-run
        assert resumed.summary()["trials"] == 6

    def test_fully_journaled_resume_executes_nothing(self, tmp_path):
        specs = [FaultSpec(site=s, mask=1, thread=0, occurrence=1)
                 for s in range(4)]
        root = str(tmp_path / "runs")

        def factory():
            def runner(spec):
                return TrialObservation(
                    failure=False, detected=True, output_ok=False,
                    activated=True,
                )

            return runner

        first = run_campaign(None, specs, runner_factory=factory,
                             options=CampaignOptions(workers=1, run_dir=root))

        def exploding_factory():
            def runner(spec):
                raise AssertionError("resume should not execute trials")

            return runner

        resumed = run_campaign(
            None, specs, runner_factory=exploding_factory,
            options=CampaignOptions(workers=1, resume=root),
        )
        _assert_identical(resumed, first)

    @needs_fork
    def test_quarantine_records_replay_on_resume(self, tmp_path):
        import test_retry

        specs = [FaultSpec(site=s, mask=1, thread=0, occurrence=1)
                 for s in (1, 666, 3)]
        root = str(tmp_path / "runs")
        first = run_campaign(
            None, specs,
            runner_factory=test_retry._selective_crash_factory,
            options=CampaignOptions(workers=2, chunk_size=1,
                                    retry=FAST_RETRY, run_dir=root),
        )
        assert first.summary()["quarantined"] == 1

        def healthy_factory():
            def runner(spec):
                raise AssertionError("resume should not execute trials")

            return runner

        resumed = run_campaign(
            None, specs, runner_factory=healthy_factory,
            options=CampaignOptions(workers=2, chunk_size=1,
                                    retry=FAST_RETRY, resume=root),
        )
        _assert_identical(resumed, first)
        assert resumed.trials[1].outcome is Outcome.WORKER_KILLED
        assert resumed.quarantined[0].index == 1
        assert resumed.quarantined[0].deaths == first.quarantined[0].deaths

    @needs_fork
    def test_resume_across_worker_counts(self, tmp_path):
        # journal written by a serial run, resumed by a pooled one
        wl, specs = _tiny_specs()
        baseline = run_campaign(HauberkProgram(wl), specs, mode="fi",
                                options=CampaignOptions(workers=1))
        root = str(tmp_path / "runs")
        run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=1, run_dir=root),
        )
        _truncate_journal(root, keep=len(specs) - 3)
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=4, resume=root),
        )
        _assert_identical(resumed, baseline)

    def test_resume_journal_becomes_complete(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        _truncate_journal(root, keep=2)
        run_campaign(HauberkProgram(TinyWorkload()), specs, mode="fi",
                     options=CampaignOptions(workers=1, resume=root))
        with open(_journal_path(root), encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        # the resumed run appended exactly the missing records
        assert sorted(r["i"] for r in records) == list(range(len(specs)))


# -- section tags and incremental adoption --------------------------------


TWO_CHAIN_SRC = """
kernel two(float* a, float* b, float* oa, float* ob) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float x = a[tid] * 2.0;
    oa[tid] = x;
    __syncthreads();
    int ujd = blockIdx.x * blockDim.x + threadIdx.x;
    float y = b[ujd] + 1.0;
    ob[ujd] = y;
}
"""

_TC_N = 4


class TwoChainWorkload(TinyWorkload.__bases__[0]):
    """Two dataflow-independent chains (a->oa, b->ob) behind a barrier."""

    name = "TWOCHAIN"
    source = TWO_CHAIN_SRC
    offset = 1.0

    def generate_input(self, seed: int = 0):
        import numpy as np

        from repro.kir.types import DType
        from repro.workloads.base import BufferSpec, WorkloadInput

        rng = np.random.default_rng(seed + 7)
        a = rng.uniform(0.5, 2.0, _TC_N).astype(np.float32)
        b = rng.uniform(0.5, 2.0, _TC_N).astype(np.float32)
        return WorkloadInput(
            buffers=[
                BufferSpec("a", DType.FLOAT32, _TC_N, a),
                BufferSpec("b", DType.FLOAT32, _TC_N, b),
                BufferSpec("oa", DType.FLOAT32, _TC_N,
                           np.zeros(_TC_N, dtype=np.float32)),
                BufferSpec("ob", DType.FLOAT32, _TC_N,
                           np.zeros(_TC_N, dtype=np.float32)),
            ],
            scalars={},
            buffer_params={"a": "a", "b": "b", "oa": "oa", "ob": "ob"},
            outputs=["oa", "ob"],
            grid=(1, 1),
            block=(_TC_N, 1),
            meta={"a": a, "b": b},
        )

    def golden(self, inp):
        import numpy as np

        a = inp.meta["a"].astype(np.float64)
        b = inp.meta["b"].astype(np.float64)
        oa = (a.astype(np.float32) * np.float32(2.0)).astype(np.float64)
        ob = (b.astype(np.float32) + np.float32(self.offset)) \
            .astype(np.float64)
        return np.concatenate([oa, ob])


class TwoChainEdited(TwoChainWorkload):
    """Chain 2's constant changed; chain 1 is byte-identical."""

    source = TWO_CHAIN_SRC.replace("+ 1.0", "+ 2.0")
    offset = 2.0


def _two_chain_specs(wl):
    from repro.swifi import build_fault_specs, enumerate_targets

    return build_fault_specs(
        enumerate_targets(wl.kernel), n_threads=_TC_N,
        masks_per_site=2, bit_counts=(1, 2), seed=5,
    )


def _counting_program(wl, executed):
    """A program whose full-path trial runner logs each executed site."""
    prog = HauberkProgram(wl)
    orig = prog.trial_runner

    def counting_trial_runner(mode, seed):
        base = orig(mode, seed)

        def runner(spec):
            executed.append(spec.site)
            return base(spec)

        return runner

    prog.trial_runner = counting_trial_runner
    return prog


class TestSectionAdoption:
    def test_records_carry_section_tags(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        with open(_journal_path(root), encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        assert all(r.get("sec", "").startswith("s") for r in records)
        meta_path = os.path.join(os.path.dirname(_journal_path(root)),
                                 "meta.json")
        meta = json.loads(open(meta_path, encoding="utf-8").read())
        assert meta["sections"]  # per-section fingerprints recorded

    def test_incremental_adoption_after_edit(self, tmp_path):
        from repro.kir.analysis import (
            affected_sections,
            kernel_sections,
            site_section_map,
        )

        wl1 = TwoChainWorkload()
        specs = _two_chain_specs(wl1)
        root = str(tmp_path / "runs")
        opts = CampaignOptions(workers=1, differential=False)
        run_campaign(HauberkProgram(wl1), specs, mode="fi",
                     options=opts.evolve(run_dir=root))

        wl2 = TwoChainEdited()
        assert [s.site for s in _two_chain_specs(wl2)] == \
            [s.site for s in specs]  # same shape, same spec stream
        baseline = run_campaign(HauberkProgram(TwoChainEdited()), specs,
                                mode="fi", options=opts)

        executed = []
        resumed = run_campaign(
            _counting_program(wl2, executed), specs, mode="fi",
            options=opts.evolve(resume=root),
        )
        _assert_identical(resumed, baseline)

        # only the edited chain's closure re-executes: the params
        # section (ancestor) and chain 2; chain 1 records are adopted
        sections = kernel_sections(wl2.kernel)
        sec_of = site_section_map(wl2.kernel, sections)
        stale = affected_sections(sections, {"s2"})
        assert stale == {"s0", "s2"}
        expected = sorted(s.site for s in specs if sec_of[s.site] in stale)
        assert sorted(executed) == expected
        assert len(executed) < len(specs)

    def test_dependent_edit_refuses_adoption(self, tmp_path):
        class TinyEdited(TinyWorkload):
            source = TinyWorkload.source.replace("v * v", "v * v * v")

        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        opts = CampaignOptions(workers=1, differential=False)
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=opts.evolve(run_dir=root))

        # the edited loop feeds the whole kernel: every section is in
        # the closure, so nothing is safe to adopt
        executed = []
        run_campaign(_counting_program(TinyEdited(), executed), specs,
                     mode="fi", options=opts.evolve(resume=root))
        assert len(executed) == len(specs)

    def test_resumed_journal_is_self_contained(self, tmp_path):
        """Adopted records live in the new journal: a second resume of
        the edited campaign replays everything without the donor."""
        import shutil

        wl1 = TwoChainWorkload()
        specs = _two_chain_specs(wl1)
        root = str(tmp_path / "runs")
        opts = CampaignOptions(workers=1, differential=False)
        run_campaign(HauberkProgram(wl1), specs, mode="fi",
                     options=opts.evolve(run_dir=root))
        first = run_campaign(HauberkProgram(TwoChainEdited()), specs,
                             mode="fi", options=opts.evolve(resume=root))
        # remove the donor directory; only the edited campaign remains
        fp_dirs = sorted(os.listdir(root))
        assert len(fp_dirs) == 2
        from repro.swifi import campaign_fingerprint

        fp2, _ = campaign_fingerprint(
            HauberkProgram(TwoChainEdited()), specs, "fi", 0
        )
        donor = [d for d in fp_dirs if not fp2.startswith(d)]
        assert len(donor) == 1
        shutil.rmtree(os.path.join(root, donor[0]))

        def exploding_factory():
            def runner(spec):
                raise AssertionError("resume should not execute trials")

            return runner

        prog = HauberkProgram(TwoChainEdited())
        prog.trial_runner = lambda mode, seed: exploding_factory()
        again = run_campaign(prog, specs, mode="fi",
                             options=opts.evolve(resume=root))
        _assert_identical(again, first)
