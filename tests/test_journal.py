"""Durable journal and resume tests: crash-tolerant campaign state.

The contract under test (``repro.swifi.journal`` + ``run_campaign``):
every classified trial is durably journaled the moment it exists, and a
campaign killed mid-run and resumed with ``CampaignOptions(resume=dir)``
produces a :class:`CampaignResult` bit-identical to an uninterrupted
run — for any worker count and with differential replay on or off.
Interruption is simulated by truncating the journal to a prefix, which
is exactly the state a ``SIGKILL`` leaves behind (plus, in the torn-tail
tests, half a record).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.program import HauberkProgram
from repro.errors import InjectionError
from repro.exec import RetryPolicy, fork_available
from repro.swifi import (
    CampaignJournal,
    CampaignOptions,
    FaultSpec,
    Outcome,
    campaign_fingerprint,
    run_campaign,
    spec_fingerprint,
)
from repro.swifi.campaign import TrialObservation

from test_parallel_campaign import TinyWorkload, _tiny_specs

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

FAST_RETRY = RetryPolicy(max_deaths=2, backoff_base=0.001, backoff_max=0.002)


def _journal_path(root) -> str:
    (entry,) = [d for d in os.listdir(root)
                if os.path.isdir(os.path.join(root, d))]
    return os.path.join(root, entry, "journal.jsonl")


def _truncate_journal(root, keep: int) -> None:
    """Keep the first ``keep`` records — the state a kill leaves behind."""
    path = _journal_path(root)
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines[:keep])


def _assert_identical(a, b):
    assert a.summary() == b.summary()
    assert [t.outcome for t in a.trials] == [t.outcome for t in b.trials]
    assert [t.observation for t in a.trials] == \
        [t.observation for t in b.trials]
    assert [t.spec for t in a.trials] == [t.spec for t in b.trials]


# -- fingerprints ---------------------------------------------------------


class TestFingerprints:
    def test_spec_fingerprint_stable_and_sensitive(self):
        spec = FaultSpec(site=3, mask=5, thread=1, occurrence=2)
        assert spec_fingerprint(spec) == spec_fingerprint(spec)
        other = FaultSpec(site=3, mask=5, thread=1, occurrence=3)
        assert spec_fingerprint(spec) != spec_fingerprint(other)

    def test_campaign_fingerprint_covers_plan_and_seed(self):
        wl, specs = _tiny_specs()
        prog = HauberkProgram(wl)
        fp1, meta = campaign_fingerprint(prog, specs, "fi", 0)
        fp2, _ = campaign_fingerprint(HauberkProgram(TinyWorkload()),
                                      specs, "fi", 0)
        assert fp1 == fp2  # same ingredients, same fingerprint
        assert meta["components"]["workload"] == "TINY"
        fp3, _ = campaign_fingerprint(prog, specs, "fi", 1)
        assert fp3 != fp1  # seed participates
        fp4, _ = campaign_fingerprint(prog, specs[:-1], "fi", 0)
        assert fp4 != fp1  # plan participates

    def test_runner_campaigns_fingerprint_plan_only(self):
        specs = [FaultSpec(site=1, mask=1, thread=0, occurrence=1)]
        fp, meta = campaign_fingerprint(None, specs, "fi", 0)
        assert meta["components"]["workload"] == "<runner>"
        assert fp


# -- journal mechanics ----------------------------------------------------


class TestJournalMechanics:
    def test_campaign_writes_one_record_per_trial(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        with open(_journal_path(root), encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        assert len(records) == len(specs)
        assert sorted(r["i"] for r in records) == list(range(len(specs)))
        assert all(r["dg"] for r in records)

    def test_meta_json_written(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        meta_path = os.path.join(os.path.dirname(_journal_path(root)),
                                 "meta.json")
        meta = json.loads(open(meta_path, encoding="utf-8").read())
        fp, _ = campaign_fingerprint(
            HauberkProgram(TinyWorkload()), specs, "fi", 0
        )
        assert meta["fingerprint"] == fp

    def test_run_dir_without_resume_truncates(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        options = CampaignOptions(workers=1, run_dir=root)
        run_campaign(HauberkProgram(wl), specs, mode="fi", options=options)
        run_campaign(HauberkProgram(TinyWorkload()), specs, mode="fi",
                     options=options)
        with open(_journal_path(root), encoding="utf-8") as fh:
            assert len(fh.readlines()) == len(specs)  # not doubled

    def test_fingerprint_mismatch_raises(self, tmp_path):
        directory = tmp_path / "runs" / "feedfeedfeedfeed"
        directory.mkdir(parents=True)
        (directory / "meta.json").write_text(
            json.dumps({"fingerprint": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(InjectionError, match="fingerprint mismatch"):
            CampaignJournal.open(
                str(tmp_path / "runs"), "feedfeedfeedfeed" + "0" * 48,
                {"fingerprint": "x"}, resume=True,
            )

    def test_torn_tail_line_is_dropped(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        path = _journal_path(root)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        # a kill mid-write leaves half a record; a flipped byte leaves a
        # syntactically valid record with a digest mismatch
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:3])
            fh.write(lines[3][: len(lines[3]) // 2])
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=1, resume=root),
        )
        baseline = run_campaign(HauberkProgram(TinyWorkload()), specs,
                                mode="fi", options=CampaignOptions(workers=1))
        _assert_identical(resumed, baseline)

    def test_digest_mismatch_line_is_dropped(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        path = _journal_path(root)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        corrupted = json.loads(lines[0])
        corrupted["outcome"] = "masked" \
            if corrupted["outcome"] != "masked" else "undetected"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(corrupted) + "\n")
            fh.writelines(lines[1:])
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=1, resume=root),
        )
        baseline = run_campaign(HauberkProgram(TinyWorkload()), specs,
                                mode="fi", options=CampaignOptions(workers=1))
        _assert_identical(resumed, baseline)  # record re-executed, not trusted


# -- kill/resume parity ---------------------------------------------------


class TestResumeParity:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("differential", [False, True])
    def test_killed_and_resumed_equals_uninterrupted(
        self, tmp_path, workers, differential
    ):
        if workers > 1 and not fork_available():
            pytest.skip("requires the fork start method")
        wl, specs = _tiny_specs()
        baseline = run_campaign(
            HauberkProgram(wl), specs, mode="fi",
            options=CampaignOptions(workers=workers,
                                    differential=differential),
        )
        root = str(tmp_path / "runs")
        run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=workers,
                                    differential=differential, run_dir=root),
        )
        _truncate_journal(root, keep=len(specs) // 2)  # the "kill"
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=workers,
                                    differential=differential, resume=root),
        )
        _assert_identical(resumed, baseline)

    def test_resume_skips_journaled_trials(self, tmp_path):
        specs = [FaultSpec(site=s, mask=1, thread=0, occurrence=1)
                 for s in range(6)]
        root = str(tmp_path / "runs")
        executed = []

        def factory():
            def runner(spec):
                executed.append(spec.site)
                return TrialObservation(
                    failure=False, detected=False, output_ok=True,
                    activated=True,
                )

            return runner

        run_campaign(None, specs, runner_factory=factory,
                     options=CampaignOptions(workers=1, run_dir=root))
        assert executed == list(range(6))
        _truncate_journal(root, keep=4)
        executed.clear()
        resumed = run_campaign(None, specs, runner_factory=factory,
                               options=CampaignOptions(workers=1, resume=root))
        assert executed == [4, 5]  # journaled prefix replayed, not re-run
        assert resumed.summary()["trials"] == 6

    def test_fully_journaled_resume_executes_nothing(self, tmp_path):
        specs = [FaultSpec(site=s, mask=1, thread=0, occurrence=1)
                 for s in range(4)]
        root = str(tmp_path / "runs")

        def factory():
            def runner(spec):
                return TrialObservation(
                    failure=False, detected=True, output_ok=False,
                    activated=True,
                )

            return runner

        first = run_campaign(None, specs, runner_factory=factory,
                             options=CampaignOptions(workers=1, run_dir=root))

        def exploding_factory():
            def runner(spec):
                raise AssertionError("resume should not execute trials")

            return runner

        resumed = run_campaign(
            None, specs, runner_factory=exploding_factory,
            options=CampaignOptions(workers=1, resume=root),
        )
        _assert_identical(resumed, first)

    @needs_fork
    def test_quarantine_records_replay_on_resume(self, tmp_path):
        import test_retry

        specs = [FaultSpec(site=s, mask=1, thread=0, occurrence=1)
                 for s in (1, 666, 3)]
        root = str(tmp_path / "runs")
        first = run_campaign(
            None, specs,
            runner_factory=test_retry._selective_crash_factory,
            options=CampaignOptions(workers=2, chunk_size=1,
                                    retry=FAST_RETRY, run_dir=root),
        )
        assert first.summary()["quarantined"] == 1

        def healthy_factory():
            def runner(spec):
                raise AssertionError("resume should not execute trials")

            return runner

        resumed = run_campaign(
            None, specs, runner_factory=healthy_factory,
            options=CampaignOptions(workers=2, chunk_size=1,
                                    retry=FAST_RETRY, resume=root),
        )
        _assert_identical(resumed, first)
        assert resumed.trials[1].outcome is Outcome.WORKER_KILLED
        assert resumed.quarantined[0].index == 1
        assert resumed.quarantined[0].deaths == first.quarantined[0].deaths

    @needs_fork
    def test_resume_across_worker_counts(self, tmp_path):
        # journal written by a serial run, resumed by a pooled one
        wl, specs = _tiny_specs()
        baseline = run_campaign(HauberkProgram(wl), specs, mode="fi",
                                options=CampaignOptions(workers=1))
        root = str(tmp_path / "runs")
        run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=1, run_dir=root),
        )
        _truncate_journal(root, keep=len(specs) - 3)
        resumed = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=4, resume=root),
        )
        _assert_identical(resumed, baseline)

    def test_resume_journal_becomes_complete(self, tmp_path):
        wl, specs = _tiny_specs(masks_per_site=1)
        root = str(tmp_path / "runs")
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1, run_dir=root))
        _truncate_journal(root, keep=2)
        run_campaign(HauberkProgram(TinyWorkload()), specs, mode="fi",
                     options=CampaignOptions(workers=1, resume=root))
        with open(_journal_path(root), encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        # the resumed run appended exactly the missing records
        assert sorted(r["i"] for r in records) == list(range(len(specs)))
