"""Warp-uniformity / divergence analysis tests."""

from repro.kir import parse_kernel
from repro.kir.analysis import (
    GRID_SEEDS,
    branch_divergence,
    is_warp_uniform,
    thread_varying_names,
)
from repro.core.translator import HauberkTranslator
from repro.workloads import get_workload


SRC = """
kernel k(float* data, float* out, int n, float scale) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    int bound = n * 2;
    float uniform_v = scale * 3.0;
    float mine = data[tid];
    float shared_v = data[0];
    if (tid < n) {
        float inside = uniform_v + 1.0;
        out[tid] = mine * inside;
    }
    if (bound > 4) {
        out[0] = shared_v;
    }
    for (int i = 0; i < bound; i++) {
        float grows = uniform_v * float(i);
        out[i] = grows;
    }
    for (int j = 0; j < tid; j++) {
        out[j] = 0.0;
    }
}
"""


class TestTaint:
    def test_taint_propagation(self):
        k = parse_kernel(SRC)
        tainted = thread_varying_names(k)
        assert "tid" in tainted
        assert "mine" in tainted  # loaded through a tainted index
        assert "inside" in tainted  # control-dependent on tid < n
        assert "bound" not in tainted
        assert "uniform_v" not in tainted
        assert "shared_v" not in tainted  # data[0] is the same everywhere
        assert "grows" not in tainted  # uniform loop over a uniform bound

    def test_grid_seeds_widen_taint(self):
        k = parse_kernel(
            "kernel k(int n, int* o) { int b = blockIdx.x; o[0] = b; }"
        )
        assert "b" not in thread_varying_names(k)  # warp-uniform
        assert "b" in thread_varying_names(k, seeds=GRID_SEEDS)

    def test_is_warp_uniform(self):
        k = parse_kernel(SRC)
        uniform_cond = k.body[6].cond  # bound > 4
        divergent_cond = k.body[5].cond  # tid < n
        assert is_warp_uniform(k, uniform_cond)
        assert not is_warp_uniform(k, divergent_cond)


class TestBranchReport:
    def test_classification(self):
        k = parse_kernel(SRC)
        report = branch_divergence(k)
        kinds = dict(report.branches)
        assert kinds["tid < n"] == "divergent"
        assert kinds["bound > 4"] == "uniform"
        assert kinds["i < bound"] == "uniform"
        assert kinds["j < tid"] == "divergent"
        assert report.divergent_count == 2
        assert report.uniform_count == 2

    def test_detector_checks_compare_like_original(self):
        """Hauberk's added NL branches diverge no more than the data they
        guard: a duplicate of a uniform value yields a uniform branch."""
        k = parse_kernel(
            """
kernel k(float scale, float* out, int n) {
    float u = scale * 2.0;
    out[0] = u;
}
"""
        )
        ft = HauberkTranslator().build(k, "ft")
        report = branch_divergence(ft.kernel)
        # the inserted check on `u` (uniform) is itself warp-uniform
        check_kinds = [kind for cond, kind in report.branches if "__dup" in cond]
        assert check_kinds and all(kind == "uniform" for kind in check_kinds)

    def test_workload_loop_divergence_classification(self):
        """CP's unguarded main loop is warp-uniform; MRI-Q's loop sits
        under the `t < numx` boundary guard, which *is* real divergence
        at the grid tail — the analysis must see both."""
        cp = branch_divergence(get_workload("CP").kernel)
        assert dict(cp.branches)["atomid < numatoms"] == "uniform"
        mriq = branch_divergence(get_workload("MRI-Q").kernel)
        kinds = dict(mriq.branches)
        assert kinds["t < numx"] == "divergent"
        assert kinds["k < numk"] == "divergent"  # control-dependent on the guard
