"""Parser tests: grammar coverage, precedence, sugar, and errors."""

import pytest

from repro.errors import KIRParseError, KIRValidationError
from repro.kir import parse_kernel, kernel_to_source
from repro.kir.astnodes import (
    AtomicAdd,
    BinOp,
    Const,
    Decl,
    For,
    If,
    Load,
    SharedLoad,
    SharedStore,
    Store,
    While,
)
from repro.kir.parser import tokenize
from repro.kir.types import DType


def test_minimal_kernel():
    k = parse_kernel("kernel empty(int n) { int x = n; }")
    assert k.name == "empty"
    assert k.params[0].dtype is DType.INT32
    assert isinstance(k.body[0], Decl)


def test_pointer_params():
    k = parse_kernel("kernel p(float* a, int* b) { a[0] = 1.0; b[1] = 2; }")
    assert k.params[0].dtype is DType.PTR_FLOAT32
    assert k.params[1].dtype is DType.PTR_INT32
    assert isinstance(k.body[0], Store)


def test_precedence_mul_over_add():
    k = parse_kernel("kernel p(int a, int b, int c) { int x = a + b * c; }")
    rhs = k.body[0].init
    assert isinstance(rhs, BinOp) and rhs.op == "+"
    assert isinstance(rhs.right, BinOp) and rhs.right.op == "*"


def test_precedence_shift_over_bitand():
    k = parse_kernel("kernel p(int a) { int x = a >> 16 & 32767; }")
    rhs = k.body[0].init
    assert rhs.op == "&"
    assert rhs.left.op == ">>"


def test_left_associativity():
    k = parse_kernel("kernel p(int a, int b, int c) { int x = a - b - c; }")
    rhs = k.body[0].init
    assert rhs.op == "-"
    assert isinstance(rhs.left, BinOp) and rhs.left.op == "-"


def test_unary_minus_folds_constants():
    k = parse_kernel("kernel p(int n) { int x = -5; float y = -1.5; }")
    assert k.body[0].init == Const(-5)
    assert k.body[1].init == Const(-1.5)


def test_compound_assignment_sugar():
    k = parse_kernel(
        "kernel p(int n) { int x = 0; x += n; x -= 1; x *= 2; x++; x--; }"
    )
    ops = [s.value.op for s in k.body[1:]]
    assert ops == ["+", "-", "*", "+", "-"]


def test_indexed_compound_assignment():
    k = parse_kernel("kernel p(float* a, int i) { a[i] += 1.0; }")
    store = k.body[0]
    assert isinstance(store, Store)
    assert isinstance(store.value, BinOp) and isinstance(store.value.left, Load)


def test_for_loop_structure():
    k = parse_kernel(
        "kernel p(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } }"
    )
    loop = k.body[1]
    assert isinstance(loop, For)
    assert loop.init.name == "i"
    assert loop.update.name == "i"


def test_while_and_break_continue():
    k = parse_kernel(
        """
kernel p(int n) {
    int i = 0;
    while (i < n) {
        i++;
        if (i == 3) { continue; }
        if (i > 5) { break; }
    }
}
"""
    )
    assert isinstance(k.body[1], While)


def test_do_while_lowering_runs_once():
    k = parse_kernel(
        """
kernel p(int* out, int n) {
    int i = 0;
    do {
        i++;
    } while (i < n);
    out[0] = i;
}
"""
    )
    # lowered form validates and contains a While
    assert k.validated


def test_shared_memory_and_sync():
    k = parse_kernel(
        """
kernel p(int n) {
    shared float tile[64];
    int t = threadIdx.x;
    tile[t] = 1.0;
    __syncthreads();
    float v = tile[t];
}
"""
    )
    assert k.uses_sync
    assert k.shared[0].size == 64
    assert isinstance(k.body[1], SharedStore)
    assert isinstance(k.body[3].init, SharedLoad)


def test_atomic_add_global_and_shared():
    k = parse_kernel(
        """
kernel p(int* hist, int n) {
    shared int sh[8];
    atomicAdd(&sh[0], 1);
    atomicAdd(&hist[n], 2);
}
"""
    )
    assert isinstance(k.body[0], AtomicAdd) and k.body[0].space == "shared"
    assert isinstance(k.body[1], AtomicAdd) and k.body[1].space == "global"


def test_else_if_chain():
    k = parse_kernel(
        """
kernel p(int n, int* out) {
    if (n < 0) { out[0] = 0; }
    else if (n == 0) { out[0] = 1; }
    else { out[0] = 2; }
}
"""
    )
    top = k.body[0]
    assert isinstance(top, If)
    assert isinstance(top.els[0], If)


def test_casts_and_intrinsics():
    k = parse_kernel(
        "kernel p(float v) { int i = int(v); float f = float(i); float s = sqrt(v); }"
    )
    assert k.body[0].init.func == "int"
    assert k.body[2].init.func == "sqrt"


def test_comments_are_skipped():
    k = parse_kernel(
        """
kernel p(int n) {
    // line comment
    int x = n; /* block
    comment */ int y = x;
}
"""
    )
    assert len(k.body) == 2


def test_float_literal_forms():
    k = parse_kernel(
        "kernel p(int n) { float a = 1.5; float b = .5; float c = 2e3; float d = 1.0f; }"
    )
    assert [s.init.value for s in k.body] == [1.5, 0.5, 2000.0, 1.0]


def test_hex_literals():
    k = parse_kernel("kernel p(int n) { int x = 0xFF; }")
    assert k.body[0].init.value == 255


def test_library_call_with_string():
    k = parse_kernel('kernel p(int n) { __hauberk_fi(3, "n"); }')
    call = k.body[0]
    assert call.func == "__hauberk_fi"
    assert call.args[1].value == "n"


@pytest.mark.parametrize(
    "src",
    [
        "kernel p(int n) { x = 1; }",  # undeclared
        "kernel p(int n) { int n = 1; }",  # shadows param
        "kernel p(int n) { float v = unknownfn(n); }",  # unknown function
        "kernel p(int n) { int x = 1 }",  # missing semicolon
        "kernel p(int n) { break; }",  # break outside loop
    ],
)
def test_rejects_bad_programs(src):
    with pytest.raises((KIRParseError, KIRValidationError)):
        parse_kernel(src)


def test_unterminated_block():
    with pytest.raises(KIRParseError):
        parse_kernel("kernel p(int n) { int x = 1;")


def test_tokenizer_reports_position():
    with pytest.raises(KIRParseError) as err:
        tokenize("kernel p() { int x = $; }")
    assert "line 1" in str(err.value)


def test_roundtrip_through_printer():
    src = """
kernel rt(float* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float s = 0.0;
    for (int j = 0; j < n; j = j + 1) {
        s = s + a[j] * 2.0;
        if (s > 10.0) {
            s = s - 1.0;
        }
    }
    a[i] = s;
}
"""
    k1 = parse_kernel(src)
    text = kernel_to_source(k1)
    k2 = parse_kernel(text)
    assert kernel_to_source(k2) == text
