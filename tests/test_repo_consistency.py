"""Repository self-consistency: docs, examples, and benches stay in sync."""

import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestInventory:
    def test_all_examples_exist_and_have_docstrings(self):
        examples = sorted((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3  # deliverable: at least three
        names = {e.name for e in examples}
        assert "quickstart.py" in names
        for e in examples:
            head = e.read_text().lstrip()
            assert head.startswith(('"""', "#!")), e.name

    def test_every_figure_has_a_bench(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for needed in (
            "test_fig01_sensitivity.py",
            "test_fig02_memory.py",
            "test_fig03_graphics_faults.py",
            "test_fig04_loop_time.py",
            "test_fig09_dependency.py",
            "test_fig10_value_ranges.py",
            "test_fig13_overhead.py",
            "test_fig14_coverage.py",
            "test_fig15_bitflip_magnitude.py",
            "test_fig16_false_positives.py",
            "test_sec9c_alpha_coverage.py",
            "test_sec9d_instrumentation.py",
            "test_ablations.py",
        ):
            assert needed in benches, needed

    def test_readme_mentions_real_files(self):
        readme = (ROOT / "README.md").read_text()
        for path in re.findall(r"`examples/([a-z_]+\.py)`", readme):
            assert (ROOT / "examples" / path).exists(), path

    def test_docs_exist(self):
        for doc in ("architecture.md", "kir-language.md", "fault-model.md",
                    "detectors.md"):
            assert (ROOT / "docs" / doc).exists(), doc

    def test_design_and_experiments_exist(self):
        for f in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
            text = (ROOT / f).read_text()
            assert len(text) > 1000, f

    def test_cli_experiments_match_design_index(self):
        from repro.__main__ import _experiments

        design = (ROOT / "DESIGN.md").read_text().lower()
        for name in _experiments():
            assert name[:3] in ("fig", "sec")
        assert "test_fig14_coverage.py" in design

    def test_module_docstrings_everywhere(self):
        missing = []
        for path in (ROOT / "src").rglob("*.py"):
            text = path.read_text().lstrip()
            if not text:
                continue
            if not text.startswith(('"""', "'''")):
                missing.append(str(path.relative_to(ROOT)))
        assert not missing, missing

    def test_no_randomized_hash_seeding(self):
        """str hash() is randomized per process; seeds must never use it
        (regression guard for the fig01 reproducibility bug)."""
        for path in (ROOT / "src").rglob("*.py"):
            text = path.read_text()
            assert "hash(" not in text, path
