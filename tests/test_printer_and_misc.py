"""Printer edge cases, error types, reporting helpers, evalcore misc."""

import math

from hypothesis import given, settings, strategies as st

from repro.errors import (
    CPUSegmentationFault,
    KernelCrash,
    KernelHang,
    KIRParseError,
    ReproError,
)
from repro.harness.reporting import format_table, pct
from repro.kir import kernel_to_source, parse_kernel
from repro.kir.interp.evalcore import (
    INTRINSIC_IMPL,
    _safe_acos,
    _safe_exp,
    _safe_log,
    _safe_pow,
    _safe_rsqrt,
)
from repro.kir.printer import format_const


class TestPrinter:
    def test_float_constants_stay_floats(self):
        assert format_const(1.0) == "1.0"
        assert format_const(2.5) == "2.5"
        assert format_const(1e-30) == "1e-30"

    def test_string_escaping(self):
        assert format_const('a"b\\c') == '"a\\"b\\\\c"'

    def test_parenthesization_preserves_semantics(self):
        src = "kernel k(int a, int b, int c, int* o) { o[0] = (a + b) * c - a / (b - c); }"
        k1 = parse_kernel(src)
        k2 = parse_kernel(kernel_to_source(k1))
        assert kernel_to_source(k1) == kernel_to_source(k2)

    def test_unary_in_binary(self):
        k = parse_kernel("kernel k(int a, int* o) { o[0] = -a * 2; }")
        text = kernel_to_source(k)
        assert parse_kernel(text)  # reparses cleanly

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(st.sampled_from("+-*/"), min_size=1, max_size=5),
        vals=st.lists(st.integers(min_value=1, max_value=9), min_size=6, max_size=6),
    )
    def test_roundtrip_random_arith(self, ops, vals):
        expr = str(vals[0])
        for i, op in enumerate(ops):
            expr = f"({expr} {op} {vals[i + 1]})" if i % 2 else f"{expr} {op} {vals[i + 1]}"
        src = f"kernel k(int* o) {{ o[0] = {expr}; }}"
        k1 = parse_kernel(src)
        text1 = kernel_to_source(k1)
        text2 = kernel_to_source(parse_kernel(text1))
        assert text1 == text2


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(KernelCrash, ReproError)
        assert issubclass(KernelHang, ReproError)
        assert issubclass(CPUSegmentationFault, ReproError)

    def test_crash_message(self):
        err = KernelCrash("bad load", thread=3, block=1)
        assert "thread 3" in str(err) and "block 1" in str(err)

    def test_parse_error_position(self):
        err = KIRParseError("oops", line=4, col=9)
        assert err.line == 4 and "line 4" in str(err)

    def test_segfault_address_format(self):
        err = CPUSegmentationFault(0xDEAD, "write")
        assert "0x0000dead" in str(err)


class TestEvalcoreIntrinsics:
    def test_safe_math_edge_cases(self):
        assert math.isnan(_safe_acos(2.0))
        assert _safe_exp(1e9) == math.inf
        assert _safe_log(0.0) == -math.inf
        assert math.isnan(_safe_log(-1.0))
        assert _safe_rsqrt(0.0) == math.inf
        assert _safe_rsqrt(4.0) == 0.5
        assert math.isnan(_safe_pow(-1.0, 0.5))

    def test_intrinsic_table_complete(self):
        from repro.kir.validate import INTRINSICS

        for name in INTRINSICS:
            if name == "__float_as_int":
                continue  # compiled specially
            assert name in INTRINSIC_IMPL, name


class TestReporting:
    def test_pct_bounds(self):
        assert pct(0.0).strip() == "0.0%"
        assert pct(1.0).strip() == "100.0%"

    def test_table_alignment(self):
        text = format_table("Title", ["col", "x"], [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        widths = {len(l) for l in lines[2:]}
        assert len(widths) <= 2  # header+rows padded consistently
