"""NullTracer zero-overhead guarantees (PR acceptance criterion).

The instrumented launch path must not perturb the simulation: with the
default NullTracer the modeled cycle counts are bit-identical to the
pre-observability seed (golden values below were captured from the seed
tree), and enabling a real tracer still must not change them — tracing
observes the cost model, it never participates in it.
"""

import time

from repro.core.program import HauberkProgram
from repro.obs import (
    NullTracer,
    RingBufferSink,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.workloads import get_workload

#: Golden (total_cycles, kernel_time) from the seed revision, default
#: workload kwargs, mode="original", seed=0.  These are exact model
#: outputs, not wall times: compare with == .
SEED_CYCLES = {
    "CP": (360896.0, 5639.0),
    "SAD": (48628.0, 1519.625),
}


def _measure(name):
    prog = HauberkProgram(get_workload(name))
    result = prog.run(mode="original", seed=0)
    return result.launch.total_cycles, result.launch.kernel_time


class TestNullTracerOverhead:
    def test_default_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_cycle_counts_bit_identical_to_seed(self):
        set_tracer(None)  # make sure the default NullTracer is active
        for name, (cycles, kernel_time) in SEED_CYCLES.items():
            got_cycles, got_time = _measure(name)
            assert got_cycles == cycles, name
            assert got_time == kernel_time, name

    def test_enabled_tracer_does_not_change_cycles(self):
        with use_tracer(Tracer(RingBufferSink())):
            for name, (cycles, kernel_time) in SEED_CYCLES.items():
                got_cycles, got_time = _measure(name)
                assert got_cycles == cycles, name
                assert got_time == kernel_time, name

    def test_null_span_is_cheap(self):
        """Micro-benchmark: 100k no-op spans must stay far below 1s.

        Generous bound (50x headroom on a laptop) so the test never
        flakes under CI load while still catching an accidentally
        allocated span handle or record dict on the disabled path.
        """
        tracer = NullTracer()
        start = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("noop", kernel="k"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"NullTracer span overhead too high: {elapsed:.3f}s"
