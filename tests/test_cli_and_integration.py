"""CLI tests and end-to-end soak scenarios."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.checkpoint import Checkpoint, CheckpointLibrary
from repro.core.guardian import Guardian
from repro.core.program import HauberkProgram, RunStatus
from repro.core.recovery import RecoveryEngine
from repro.gpu.cluster import GPUNode
from repro.swifi import FaultSpec, enumerate_targets
from repro.workloads import get_workload


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "sec9d" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig09", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "energyx2" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_inspect(self, capsys):
        assert main(["inspect", "CP", "--mode", "ft"]) == 0
        out = capsys.readouterr().out
        assert "__hauberk_check_range" in out
        assert "energyx2" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "TPACF" in out and "True" in out


class TestGuardianCheckpointing:
    def test_checkpoint_taken_and_restored(self):
        node = GPUNode(num_devices=2)
        guardian = Guardian(node=node, checkpoints=CheckpointLibrary())
        state = {"value": 0}
        restored = []

        def checkpoint_fn():
            return Checkpoint.capture("pre-launch", scalars=dict(state))

        def restore_fn(cp):
            restored.append(cp.scalars["value"])
            state.update(cp.scalars)

        calls = []

        def launch(device, budget):
            calls.append(1)
            state["value"] += 1  # the program mutates host state
            if len(calls) == 1:
                return _fake(RunStatus.HANG)
            return _fake(RunStatus.OK)

        result, report = guardian.supervise(
            launch, checkpoint_fn=checkpoint_fn, restore_fn=restore_fn
        )
        assert result.status is RunStatus.OK
        assert report.checkpoint_restores == 1
        assert restored == [0]  # rolled back to the pre-launch snapshot
        assert len(guardian.checkpoints) >= 1


def _fake(status, steps=1000):
    class R:
        pass

    r = R()
    r.status = status
    r.failure_reason = "x"
    r.launch = type("L", (), {"max_thread_steps": steps})()
    return r


@pytest.mark.slow
class TestSoak:
    def test_supervised_campaign_with_random_transients(self):
        """A production-shaped soak: calibration warm-up, then many
        inputs with occasional transient faults; recovery always lands
        on a correct output."""
        node = GPUNode(num_devices=2)
        wl = get_workload("MRI-Q")
        prog = HauberkProgram(wl, device=node.healthy_device())
        prog.train(seeds=list(range(8)))
        engine = RecoveryEngine(prog, node=node)

        # calibration warm-up on clean traffic: false alarms feed the
        # on-line range learning and the alpha controller (Section VI)
        for seed in range(50, 58):
            engine.execute(wl.generate_input(seed), lambda i: None)
            engine.recalibrate_alpha()

        rng = np.random.default_rng(17)
        acc_site = next(
            s for s in enumerate_targets(wl.kernel)
            if s.name == "qr" and s.kind == "assign"
        )
        verdicts = []
        for job in range(12):
            inp = wl.generate_input(100 + job)
            if rng.random() < 0.4:
                fault = FaultSpec(
                    site=acc_site.site,
                    mask=1 << int(rng.integers(27, 31)),
                    thread=int(rng.integers(0, inp.n_threads)),
                    occurrence=wl.numk,
                )
                source = lambda i, f=fault: f if i == 0 else None  # noqa: E731
            else:
                source = lambda i: None  # noqa: E731
            result = engine.execute(inp, source)
            verdicts.append(result.verdict)
            golden = wl.golden(inp)
            assert wl.spec.check(result.output, golden), f"job {job} wrong output"
        # some jobs were faulted and recovered, the rest were clean
        assert "clean" in verdicts
        assert any(v != "clean" for v in verdicts)
