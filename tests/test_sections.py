"""Dataflow-section tests: partition, def-use graph, staleness closure.

The contract under test (:mod:`repro.kir.analysis.sections`): a
validated kernel partitions deterministically into ordered sections at
top-level loops and barriers; every injection site maps to exactly one
section; the dependency graph is directed and earlier-only; and the
affected-set closure walks ancestors and descendants *separately* —
two independent chains sharing only the parameter section never taint
each other.
"""

from __future__ import annotations

import pytest

from repro.errors import KIRValidationError
from repro.kir import parse_kernel
from repro.kir.analysis import (
    affected_sections,
    kernel_sections,
    section_dependencies,
    section_fingerprints,
    site_section_map,
)
from repro.workloads import get_workload

CHAIN_SRC = """
kernel chain(float* a, float* b, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float x = a[tid] * 2.0;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        acc = acc + x;
    }
    float y = acc * 0.5;
    b[tid] = y;
}
"""

# Two dataflow-independent chains: a -> oa and b -> ob, split by a
# barrier, with no shared intermediate names.
TWO_CHAIN_SRC = """
kernel two(float* a, float* b, float* oa, float* ob) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float x = a[tid] * 2.0;
    oa[tid] = x;
    __syncthreads();
    int ujd = blockIdx.x * blockDim.x + threadIdx.x;
    float y = b[ujd] + 1.0;
    ob[ujd] = y;
}
"""


class TestPartition:
    def test_chain_partition(self):
        sections = kernel_sections(parse_kernel(CHAIN_SRC))
        assert [s.name for s in sections] == ["s0", "s1", "s2", "s3"]
        assert [s.kind for s in sections] == \
            ["params", "straight", "loop", "straight"]

    def test_requires_validated_kernel(self):
        kernel = parse_kernel(CHAIN_SRC)
        object.__setattr__(kernel, "validated", False)
        with pytest.raises(KIRValidationError):
            kernel_sections(kernel)

    def test_barrier_ends_its_section(self):
        sections = kernel_sections(parse_kernel(TWO_CHAIN_SRC))
        assert [s.kind for s in sections] == ["params", "straight", "straight"]
        # the barrier belongs to the section it terminates
        assert any(
            type(stmt).__name__ == "SyncThreads"
            for stmt in sections[1].statements
        )

    def test_every_site_mapped_once(self):
        kernel = parse_kernel(CHAIN_SRC)
        mapping = site_section_map(kernel)
        assert sorted(mapping) == list(range(kernel.n_sites))
        sections = kernel_sections(kernel)
        seen = [site for sec in sections for site in sec.site_ids]
        assert sorted(seen) == sorted(set(seen))

    def test_real_workloads_partition(self):
        for name in ("CP", "PNS"):
            kernel = get_workload(name).kernel
            sections = kernel_sections(kernel)
            assert sections[0].kind == "params"
            assert len(sections) >= 3
            assert sorted(site_section_map(kernel)) == \
                list(range(kernel.n_sites))


class TestDependencies:
    def test_chain_is_totally_ordered(self):
        deps = section_dependencies(kernel_sections(parse_kernel(CHAIN_SRC)))
        assert deps == {
            "s0": set(),
            "s1": {"s0"},
            "s2": {"s0", "s1"},
            "s3": {"s0", "s1", "s2"},
        }

    def test_independent_chains_share_only_params(self):
        deps = section_dependencies(
            kernel_sections(parse_kernel(TWO_CHAIN_SRC))
        )
        assert deps["s1"] == {"s0"}
        assert deps["s2"] == {"s0"}


class TestAffected:
    def test_changed_taints_ancestors_and_descendants(self):
        sections = kernel_sections(parse_kernel(CHAIN_SRC))
        assert affected_sections(sections, {"s2"}) == \
            {"s0", "s1", "s2", "s3"}

    def test_sibling_chain_untouched(self):
        sections = kernel_sections(parse_kernel(TWO_CHAIN_SRC))
        # changing chain 2 taints its ancestor s0 but NOT the sibling
        # chain s1 — reachable only through the common ancestor
        assert affected_sections(sections, {"s2"}) == {"s0", "s2"}
        assert affected_sections(sections, {"s1"}) == {"s0", "s1"}

    def test_empty_change_set(self):
        sections = kernel_sections(parse_kernel(CHAIN_SRC))
        assert affected_sections(sections, set()) == set()

    def test_unknown_section_is_inert(self):
        sections = kernel_sections(parse_kernel(CHAIN_SRC))
        assert affected_sections(sections, {"s99"}) == {"s99"}


class TestFingerprints:
    def test_stable_across_reparses(self):
        a = section_fingerprints(parse_kernel(CHAIN_SRC))
        b = section_fingerprints(parse_kernel(CHAIN_SRC))
        assert a == b

    def test_edit_changes_only_its_section(self):
        base = section_fingerprints(parse_kernel(CHAIN_SRC))
        edited = section_fingerprints(
            parse_kernel(CHAIN_SRC.replace("acc * 0.5", "acc * 0.25"))
        )
        changed = {name for name in base if base[name] != edited[name]}
        assert changed == {"s3"}

    @staticmethod
    def _cp_control_block():
        from repro.core.controlblock import ControlBlock
        from repro.core.translator import HauberkTranslator

        wl = get_workload("CP")
        build = HauberkTranslator().build(wl.kernel, "ft")
        cb = ControlBlock()
        cb.configure(build.detector_configs)
        return wl, cb

    def test_detector_config_taints_owning_section(self):
        wl, cb = self._cp_control_block()
        bare = section_fingerprints(wl.kernel)
        with_cb = section_fingerprints(wl.kernel, cb)
        changed = {n for n in bare if bare[n] != with_cb[n]}
        # at least one loop detector exists and lands in one section
        assert changed
        assert changed != set(bare)

    def test_config_attribution_follows_alpha(self):
        wl, cb = self._cp_control_block()
        base = section_fingerprints(wl.kernel, cb)
        det, cfg = next(iter(sorted(cb.detectors.items())))
        cfg.ranges.alpha = cfg.ranges.alpha * 3.0 + 1.0
        bumped = section_fingerprints(wl.kernel, cb)
        changed = {n for n in base if base[n] != bumped[n]}
        assert changed  # the owning section's fingerprint moved
        assert changed != set(base)  # but not every section's
