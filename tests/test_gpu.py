"""GPU substrate tests: memory, device, cost model, runtime, cluster."""

import numpy as np
import pytest

from repro.errors import (
    CompileError,
    DeviceMemoryError,
    GPUError,
    LaunchError,
    RecoveryError,
)
from repro.gpu import (
    CostModel,
    Device,
    GPUNode,
    GPURuntime,
    GlobalMemory,
    FaultSite,
    hardware_components_of,
)
from repro.kir import parse_kernel
from repro.kir.types import DType

from conftest import launch_saxpy


class TestGlobalMemory:
    def test_alloc_and_flat_layout(self):
        mem = GlobalMemory(1024)
        a = mem.alloc("a", 100, DType.FLOAT32)
        b = mem.alloc("b", 50, DType.INT32)
        assert a.base == 0 and b.base == 100
        assert mem.used_words == 150
        assert mem.allocation_of(120).name == "b"
        assert mem.allocation_of(999) is None

    def test_no_page_protection_between_buffers(self):
        """A corrupted index reads the *next* buffer silently (GPU trait)."""
        mem = GlobalMemory(1024)
        a = mem.alloc("a", 4, DType.INT32)
        b = mem.alloc("b", 4, DType.INT32)
        mem.store_i32(b.base, 42)
        # an access through buffer a with index 4 lands in b — no fault
        assert mem.load_i32(a.base + 4) == 42

    def test_unallocated_but_on_device_reads_silently(self):
        """No MMU: any address on the device is readable (SDC path)."""
        mem = GlobalMemory(1024)
        mem.alloc("a", 4, DType.INT32)
        assert mem.load_i32(100) == 0  # unallocated scratch, no fault

    def test_off_device_access_crashes(self):
        mem = GlobalMemory(1024)
        mem.alloc("a", 4, DType.INT32)
        with pytest.raises(DeviceMemoryError):
            mem.load_i32(1024)
        with pytest.raises(DeviceMemoryError):
            mem.store_f32(-1, 1.0)

    def test_typed_roundtrip(self):
        mem = GlobalMemory(64)
        mem.alloc("a", 8, DType.FLOAT32)
        mem.store_f32(0, 1.5)
        assert mem.load_f32(0) == 1.5
        mem.store_i32(1, -7)
        assert mem.load_i32(1) == -7

    def test_float32_rounding_on_store(self):
        mem = GlobalMemory(64)
        mem.alloc("a", 2, DType.FLOAT32)
        mem.store_f32(0, 0.1)  # not representable in binary32
        assert mem.load_f32(0) == np.float32(0.1)

    def test_memcpy_roundtrip(self):
        mem = GlobalMemory(256)
        a = mem.alloc("a", 16, DType.FLOAT32)
        data = np.linspace(-1, 1, 16, dtype=np.float32)
        mem.memcpy_htod(a, data)
        assert np.array_equal(mem.memcpy_dtoh(a), data)

    def test_memcpy_int(self):
        mem = GlobalMemory(256)
        a = mem.alloc("a", 8, DType.INT32)
        data = np.array([-3, 0, 7, 2**31 - 1, -(2**31), 1, 2, 3], dtype=np.int32)
        mem.memcpy_htod(a, data)
        assert np.array_equal(mem.memcpy_dtoh(a), data)

    def test_oom(self):
        mem = GlobalMemory(16)
        with pytest.raises(GPUError):
            mem.alloc("big", 32, DType.INT32)

    def test_duplicate_name_rejected(self):
        mem = GlobalMemory(64)
        mem.alloc("a", 4, DType.INT32)
        with pytest.raises(GPUError):
            mem.alloc("a", 4, DType.INT32)

    def test_reset(self):
        mem = GlobalMemory(64)
        mem.alloc("a", 4, DType.INT32)
        mem.store_i32(0, 5)
        mem.reset()
        assert mem.used_words == 0
        assert mem.load_i32(0) == 0  # zeroed scratch

    def test_word_fault_injection(self):
        mem = GlobalMemory(64)
        mem.alloc("a", 4, DType.INT32)
        mem.store_i32(0, 0)
        mem.inject_word_fault(0, 0b101)
        assert mem.load_i32(0) == 5
        with pytest.raises(DeviceMemoryError):
            mem.inject_word_fault(63, 1)  # outside mapped region


class TestCostModel:
    def test_memory_dominates_alu(self):
        cm = CostModel()
        k = parse_kernel("kernel k(float* a, int i) { float x = a[i]; float y = x + 1.0; }")
        load_cost = cm.expr_cost(k.body[0].init)
        alu_cost = cm.expr_cost(k.body[1].init)
        assert load_cost > 10 * alu_cost

    def test_transcendental_more_than_mul(self):
        cm = CostModel()
        k = parse_kernel("kernel k(float a) { float s = sin(a); float m = a * a; }")
        assert cm.expr_cost(k.body[0].init) > cm.expr_cost(k.body[1].init)

    def test_spill_factor(self):
        cm = CostModel()
        assert cm.spill_factor(10, 20) == 1.0
        assert cm.spill_factor(30, 20) > 1.0
        assert cm.spill_factor(40, 20) > cm.spill_factor(30, 20)

    def test_libcall_costs(self):
        cm = CostModel()
        assert cm.libcall_cost("__hauberk_check_range") > 0
        assert cm.libcall_cost("__hauberk_fi") == 0
        assert cm.libcall_cost("__unknown") == 0


class TestRuntime:
    def test_saxpy(self, runtime, saxpy_kernel):
        result, out = launch_saxpy(runtime, saxpy_kernel, n=64)
        assert np.allclose(out, 2.0 * np.arange(64) + 1)
        assert result.n_threads == 64

    def test_launch_arg_validation(self, runtime, saxpy_kernel):
        with pytest.raises(LaunchError):
            runtime.launch(saxpy_kernel, 1, 32, args={"x": 0, "y": 0, "a": 1.0})
        with pytest.raises(LaunchError):
            runtime.launch(
                saxpy_kernel, 1, 32,
                args={"x": 0, "y": 0, "a": 1.0, "n": 1, "zz": 3},
            )

    def test_block_size_limit(self, runtime, saxpy_kernel):
        with pytest.raises(LaunchError):
            runtime.launch(saxpy_kernel, 1, 1024, args={})

    def test_bad_dims(self, runtime, saxpy_kernel):
        with pytest.raises(LaunchError):
            runtime.launch(saxpy_kernel, 0, 32, args={})

    def test_shared_memory_compile_check(self, runtime):
        k = parse_kernel(
            "kernel k(int n) { shared int big[9999]; int x = n; }"
        )
        with pytest.raises(CompileError):
            runtime.prepare(k)

    def test_prepared_kernel_cached(self, runtime, saxpy_kernel):
        p1 = runtime.prepare(saxpy_kernel)
        p2 = runtime.prepare(saxpy_kernel)
        assert p1 is p2

    def test_prepared_cache_does_not_pin_kernel(self, runtime):
        # regression: the cache used to be a never-evicted id()-keyed
        # dict on the runtime, keeping every prepared kernel alive
        import gc
        import weakref

        kernel = parse_kernel("kernel k(int n) { int x = n * 2; }")
        runtime.prepare(kernel)
        ref = weakref.ref(kernel)
        del kernel
        gc.collect()
        assert ref() is None

    def test_prepared_cache_resets_on_clone(self, runtime, saxpy_kernel):
        from repro.gpu.runtime import PREPARED_CACHE_ATTR

        runtime.prepare(saxpy_kernel)
        assert getattr(saxpy_kernel, PREPARED_CACHE_ATTR)
        clone = saxpy_kernel.clone()
        assert not getattr(clone, PREPARED_CACHE_ATTR, {})
        assert runtime.prepare(clone) is not runtime.prepare(saxpy_kernel)

    def test_prepared_cache_keyed_by_costmodel(self, saxpy_kernel):
        shared = CostModel()
        r1 = GPURuntime(Device(), costmodel=shared)
        r2 = GPURuntime(Device(), costmodel=shared)
        r3 = GPURuntime(Device(), costmodel=CostModel())
        assert r1.prepare(saxpy_kernel) is r2.prepare(saxpy_kernel)
        assert r3.prepare(saxpy_kernel) is not r1.prepare(saxpy_kernel)

    def test_disabled_device_rejects_launch(self, saxpy_kernel):
        device = Device()
        device.enabled = False
        with pytest.raises(LaunchError):
            GPURuntime(device).launch(saxpy_kernel, 1, 1, args={})

    def test_deterministic_cycles(self, saxpy_kernel):
        r1, _ = launch_saxpy(GPURuntime(Device()), saxpy_kernel)
        r2, _ = launch_saxpy(GPURuntime(Device()), saxpy_kernel)
        assert r1.total_cycles == r2.total_cycles
        assert r1.kernel_time == r2.kernel_time

    def test_2d_grid(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel(
            """
kernel k(int* out, int w) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    out[y * w + x] = x + y * 100;
}
"""
        )
        out = device.memory.alloc("out", 64, DType.INT32)
        runtime.launch(k, (2, 2), (4, 4), {"out": out, "w": 8})
        data = device.memory.memcpy_dtoh(out).reshape(8, 8)
        assert data[3, 5] == 5 + 300
        assert data[7, 0] == 700


class TestFaultSites:
    def test_component_derivation(self):
        k = parse_kernel(
            "kernel k(float* a, int i) { float x = sqrt(a[i]); int y = i * 2; }"
        )
        fp_sites = hardware_components_of(k.body[0].init)
        assert FaultSite.FPU in fp_sites and FaultSite.MEMORY in fp_sites
        int_sites = hardware_components_of(k.body[1].init)
        assert FaultSite.ALU in int_sites and FaultSite.FPU not in int_sites
        assert FaultSite.REGISTER in int_sites


class TestCluster:
    def test_healthy_selection_and_migration(self):
        node = GPUNode(num_devices=3)
        d0 = node.healthy_device()
        replacement = node.migrate_from(d0)
        assert replacement is not d0
        assert not d0.enabled

    def test_exhaustion(self):
        node = GPUNode(num_devices=1)
        node.disable(node.devices[0])
        with pytest.raises(RecoveryError):
            node.healthy_device()

    def test_backoff_doubles_until_pass(self):
        node = GPUNode(num_devices=2, initial_backoff=1.0)
        bad = node.devices[0]
        node.disable(bad, now=0.0)
        calls = []

        def flaky_bist(device):
            calls.append(True)
            return len(calls) >= 3  # passes on the third probe

        assert node.run_backoff_daemon(0.5, flaky_bist) == []  # not due yet
        assert node.run_backoff_daemon(1.0, flaky_bist) == []  # probe 1 fails
        entry = node.pending_backoff(bad.device_id)
        assert entry.backoff == 2.0
        assert node.run_backoff_daemon(3.0, flaky_bist) == []  # probe 2 fails
        assert entry.backoff == 4.0
        assert node.run_backoff_daemon(7.0, flaky_bist) == [bad.device_id]
        assert bad.enabled
