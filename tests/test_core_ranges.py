"""Range/profiler tests including hypothesis properties."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.profiler import (
    RangeProfiler,
    learn_fp_ranges,
    learn_int_ranges,
)
from repro.core.ranges import RangeSet, ValueRange, merge_range_sets
from repro.errors import ReproError

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)


class TestValueRange:
    def test_contains(self):
        r = ValueRange(-2.0, 3.0)
        assert r.contains(0.0) and r.contains(-2.0) and r.contains(3.0)
        assert not r.contains(3.0001)
        assert not r.contains(float("nan"))

    def test_invalid(self):
        with pytest.raises(ReproError):
            ValueRange(2.0, 1.0)
        with pytest.raises(ReproError):
            ValueRange(float("nan"), 1.0)

    def test_widened(self):
        assert ValueRange(0.0, 1.0).widened(5.0) == ValueRange(0.0, 5.0)
        assert ValueRange(0.0, 1.0).widened(-5.0) == ValueRange(-5.0, 1.0)

    def test_scaled_loosens_positive(self):
        r = ValueRange(2.0, 10.0).scaled(10.0)
        assert r.lo == pytest.approx(0.2)
        assert r.hi == pytest.approx(100.0)

    def test_scaled_loosens_negative(self):
        r = ValueRange(-10.0, -2.0).scaled(10.0)
        assert r.lo == pytest.approx(-100.0)
        assert r.hi == pytest.approx(-0.2)

    def test_scaled_rejects_small_alpha(self):
        with pytest.raises(ReproError):
            ValueRange(0.0, 1.0).scaled(0.5)

    @given(finite_floats, finite_floats, st.floats(min_value=1.0, max_value=1e6))
    def test_scaling_only_grows(self, a, b, alpha):
        lo, hi = min(a, b), max(a, b)
        r = ValueRange(lo, hi)
        s = r.scaled(alpha)
        assert s.lo <= r.lo and s.hi >= r.hi

    def test_log_space_size(self):
        assert ValueRange(1.0, 100.0).log_space_size() == pytest.approx(2.0)
        assert ValueRange(-100.0, -1.0).log_space_size() == pytest.approx(2.0)
        assert ValueRange(5.0, 5.0).log_space_size() == 0.0
        assert ValueRange(-1.0, 1.0).log_space_size() > 70  # crosses zero


class TestRangeSet:
    def test_empty_admits_nothing(self):
        assert not RangeSet().contains(0.0)

    def test_contains_under_alpha(self):
        rs = RangeSet(ranges=[ValueRange(1.0, 2.0)])
        assert not rs.contains(5.0)
        assert rs.with_alpha(10.0).contains(5.0)
        assert not rs.with_alpha(10.0).contains(100.0)

    def test_never_contains_nonfinite(self):
        rs = RangeSet(ranges=[ValueRange(-1e30, 1e30)], alpha=100.0)
        assert not rs.contains(float("inf"))
        assert not rs.contains(float("nan"))

    def test_at_most_three_ranges(self):
        with pytest.raises(ReproError):
            RangeSet(ranges=[ValueRange(i, i) for i in range(4)])

    def test_learn_widens_nearest(self):
        rs = RangeSet(ranges=[ValueRange(1.0, 2.0)])
        rs2 = rs.learn(3.0)
        assert rs2.contains(2.5)

    def test_learn_opens_new_sign_class(self):
        rs = RangeSet(ranges=[ValueRange(1.0, 2.0)])
        rs2 = rs.learn(-5.0)
        assert len(rs2.ranges) == 2
        assert rs2.contains(-5.0)

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_learn_always_contains_learned(self, values):
        rs = RangeSet()
        for v in values:
            rs = rs.learn(v)
        for v in values:
            assert rs.contains(v)

    def test_merge_range_sets(self):
        a = RangeSet(ranges=[ValueRange(1.0, 2.0)])
        b = RangeSet(ranges=[ValueRange(-3.0, -1.0)])
        merged = merge_range_sets([a, b])
        assert merged.contains(1.5) and merged.contains(-2.0)


class TestProfilerAlgorithm:
    def test_three_correlation_points(self):
        rng = np.random.default_rng(0)
        samples = np.concatenate([
            rng.uniform(-200, -100, 50),
            rng.uniform(-1e-7, 1e-7, 50),
            rng.uniform(100, 200, 50),
        ])
        rs = learn_fp_ranges(samples)
        assert len(rs.ranges) == 3
        assert rs.contains(-150.0) and rs.contains(0.0) and rs.contains(150.0)
        assert not rs.contains(10.0)

    def test_threshold_search_shrinks_space(self):
        # two tight clusters around +/-1e3 and nothing near zero: a large
        # threshold (tau up from 1e-5) should keep the clusters separate
        samples = list(np.linspace(1000, 1100, 20)) + list(np.linspace(-1100, -1000, 20))
        rs = learn_fp_ranges(samples)
        assert not rs.contains(0.5)
        assert rs.contains(1050.0) and rs.contains(-1050.0)

    def test_ignores_nonfinite_samples(self):
        rs = learn_fp_ranges([1.0, float("nan"), float("inf"), 2.0])
        assert rs.contains(1.5)

    def test_empty(self):
        assert not learn_fp_ranges([]).is_trained
        assert not learn_int_ranges([]).is_trained

    def test_int_ranges(self):
        rs = learn_int_ranges([5, 6, 7, -3, -4, 0])
        assert rs.contains(6) and rs.contains(-3) and rs.contains(0)
        assert not rs.contains(100)


class TestRangeProfilerLibrary:
    def test_collect_and_finalize(self):
        prof = RangeProfiler()
        for v in (1.0, 2.0, 3.0):
            prof.lib_profile_range(None, {}, 0, v)
        prof.lib_profile_count(None, {}, 7)
        ranges = prof.finalize()
        assert ranges[0].contains(2.5)
        assert prof.site_counts[7] == 1

    def test_int_detector_detected(self):
        prof = RangeProfiler()
        prof.lib_profile_range(None, {}, 0, 5)
        assert not prof.profiles[0].is_float

    def test_merge_from(self):
        a, b = RangeProfiler(), RangeProfiler()
        a.lib_profile_range(None, {}, 0, 1.0)
        b.lib_profile_range(None, {}, 0, 100.0)
        b.lib_profile_range(None, {}, 1, -5.0)
        a.merge_from(b)
        assert len(a.profiles[0].samples) == 2
        assert 1 in a.profiles

    def test_merge_type_conflict(self):
        a, b = RangeProfiler(), RangeProfiler()
        a.lib_profile_range(None, {}, 0, 1.0)
        b.lib_profile_range(None, {}, 0, 5)
        with pytest.raises(ReproError):
            a.merge_from(b)
