"""Differential property: both interpreters agree on random kernels.

The closure compiler (fast path) and the lockstep generator interpreter
implement the same semantics twice; hypothesis-generated kernels must
produce identical frames and outputs through both.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpu.device import Device
from repro.kir.interp.compiler import CompiledKernel
from repro.kir.interp.evalcore import ExecContext
from repro.kir.interp.lockstep import LockstepProgram
from repro.kir.types import DType

from test_property_checksum import _KernelGen


def _frames(kernel, device, n_threads, out_alloc, n, seedv):
    base = {
        "n": n,
        "seedv": seedv,
        "out": out_alloc.base,
        "gridDim.x": 1,
        "gridDim.y": 1,
        "blockDim.x": n_threads,
        "blockDim.y": 1,
        "blockIdx.x": 0,
        "blockIdx.y": 0,
        "threadIdx.y": 0,
    }
    frames = []
    for t in range(n_threads):
        fr = dict(base)
        fr["threadIdx.x"] = t
        frames.append(fr)
    return frames


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(st.integers(min_value=0, max_value=1000), min_size=30, max_size=100),
    n_stmts=st.integers(min_value=1, max_value=5),
    n_value=st.integers(min_value=0, max_value=6),
    seed_value=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
)
def test_compiler_and_lockstep_agree(plan, n_stmts, n_value, seed_value):
    kernel = _KernelGen(plan).build(n_stmts)

    device_fast = Device()
    out_fast = device_fast.memory.alloc("out", 4, DType.FLOAT32)
    compiled = CompiledKernel(kernel, costmodel=_cm())
    ctx_fast = ExecContext(device_fast.memory)
    frames_fast = _frames(kernel, device_fast, 2, out_fast, n_value, seed_value)
    for t, fr in enumerate(frames_fast):
        ctx_fast.reset_thread(0, t)
        compiled.run_thread(fr, ctx_fast)

    device_slow = Device()
    out_slow = device_slow.memory.alloc("out", 4, DType.FLOAT32)
    prog = LockstepProgram(kernel, costmodel=_cm())
    ctx_slow = ExecContext(device_slow.memory)
    frames_slow = _frames(kernel, device_slow, 2, out_slow, n_value, seed_value)
    prog.run_block(frames_slow, ctx_slow)

    # identical output buffers (bitwise: both round through binary32)
    a = device_fast.memory.memcpy_dtoh(out_fast)
    b = device_slow.memory.memcpy_dtoh(out_slow)
    assert np.array_equal(a, b, equal_nan=True)
    # identical final register frames
    for fr_fast, fr_slow in zip(frames_fast, frames_slow):
        assert set(fr_fast) == set(fr_slow)
        for key, value in fr_fast.items():
            other = fr_slow[key]
            if isinstance(value, float) and value != value:
                assert other != other
            else:
                assert value == other, key
    # identical cycle accounting
    assert ctx_fast.cycles == ctx_slow.cycles
    assert ctx_fast.loop_cycles == ctx_slow.loop_cycles


def _cm():
    from repro.gpu.costmodel import CostModel

    return CostModel()
