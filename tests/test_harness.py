"""Smoke tests for every figure driver at SMOKE scale, plus reporting."""

import numpy as np
import pytest

from repro.harness.config import SMOKE, ExperimentScale
from repro.harness.reporting import format_table, pct


class TestReporting:
    def test_format_table(self):
        text = format_table("T", ["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_pct(self):
        assert pct(0.123).strip() == "12.3%"


class TestFig02:
    def test_fp_dominance(self):
        from repro.harness.fig02_memory import run_fig02

        result = run_fig02(SMOKE)
        paper = {r.group: r for r in result.paper_scale}
        # FP programs: FP data dominates by >1 order of magnitude
        assert paper["HPC FP programs"].fp_dominance_orders > 1.0
        # the integer program is integer-dominated
        assert paper["HPC integer program"].int_bytes > paper["HPC integer program"].fp_bytes


class TestFig03:
    def test_transient_vs_intermittent(self):
        from repro.harness.fig03_graphics import run_fig03

        result = run_fig03(SMOKE)
        assert not result.transient_noticeable  # Observation: no SDC
        assert result.intermittent_noticeable  # Observation 3
        assert result.intermittent.corrupted_pixels > 10 * max(
            result.transient.corrupted_pixels, 1
        )


class TestFig04:
    def test_loop_fractions(self):
        from repro.harness.fig04_loops import run_fig04

        result = run_fig04(SMOKE)
        fracs = result.loop_fraction
        assert fracs["RPES"] < 0.6  # the outlier
        dominated = [n for n, f in fracs.items() if f > 0.9]
        assert len(dominated) >= 5  # Observation 4's "5 out of 7"
        assert 0.75 < result.average < 0.95


class TestFig09:
    def test_energyx2_selected(self):
        from repro.harness.fig09_dependency import run_fig09

        result = run_fig09(SMOKE)
        assert result.scores["energyx2"] > result.scores["energyx1"]
        assert result.selected == ["energyx2"]
        assert "energyx1" in result.self_accumulating


class TestFig10:
    def test_value_clustering(self):
        from repro.harness.fig10_ranges import run_fig10

        result = run_fig10(SMOKE)
        by_name = {d.name: d for d in result.distributions}
        # integer loop counters have a sharp peak
        assert by_name["k"].peak > 0.5
        # the accumulators show multiple sign correlation points
        assert by_name["qr"].correlation_points >= 2
        assert by_name["qi"].correlation_points >= 2


class TestFig15:
    def test_more_bits_bigger_changes(self):
        from repro.harness.fig15_bitflip import run_fig15

        result = run_fig15(SMOKE)
        for range_label in ("1E-3~1E+3", "1E+3~1E+15"):
            huge = [result.huge_change_fraction(range_label, b) for b in (1, 3, 6, 10, 15)]
            assert huge == sorted(huge)  # monotone in bit count
        # huge original values almost always change hugely
        assert result.huge_change_fraction("1E+15~1E+45", 15) > 0.95


class TestSec9d:
    def test_instrumentation_fast_and_complete(self):
        from repro.harness.sec9d_instrumentation import run_sec9d

        result = run_sec9d(SMOKE)
        assert len(result.rows) == 7
        assert result.avg_seconds < 1.0  # well under the paper's 81 s
        for row in result.rows:
            assert row.ft_lines > row.kernel_lines
            assert row.detectors >= 1


@pytest.mark.slow
class TestCampaignFigures:
    def test_fig01_shape(self):
        from repro.harness.fig01_sensitivity import run_fig01

        result = run_fig01(SMOKE)
        hpc_fp = result.row("gpu_hpc", "fp")
        hpc_ptr = result.row("gpu_hpc", "pointer")
        # Observation 2: FP faults essentially never crash GPU kernels
        assert hpc_fp.failure < 0.05
        assert hpc_ptr.failure > 0.2
        # graphics FP: no SDC for single-bit faults
        assert result.row("gpu_graphics", "fp").sdc < 0.15
        # CPU SDC is far below GPU HPC SDC
        gpu_sdc = np.mean([result.row("gpu_hpc", c).sdc for c in ("pointer", "integer", "fp")])
        cpu_sdc = np.mean([result.row("cpu", s).sdc for s in ("stack", "data", "code")])
        assert cpu_sdc < gpu_sdc / 2

    def test_fig14_coverage(self):
        from repro.harness.fig14_coverage import run_fig14

        scale = ExperimentScale(
            masks_per_site=2, bit_counts=(1, 6), training_seeds=(0, 1),
            max_targets=8,
        )
        result = run_fig14(scale, names=("CP", "MRI-Q"))
        assert result.average_coverage() > 0.6

    def test_fig16_shape(self):
        from repro.harness.fig16_falsepos import run_fig16

        scale = ExperimentScale(
            fig16_training_counts=(1, 7), fig16_eval_runs=4,
        )
        result = run_fig16(scale, programs=("PNS", "MRI-FHD"))
        pns = result.series("PNS")
        fhd = result.series("MRI-FHD")
        # PNS converges fast; MRI-FHD stays imprecise at alpha=1
        assert pns[7] <= pns[1]
        assert fhd[7] >= pns[7]
        # larger alpha only reduces MRI-FHD's ratio
        fhd_alpha100 = result.series("MRI-FHD", alpha=100.0)
        assert fhd_alpha100[7] <= fhd[7]
