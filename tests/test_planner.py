"""Campaign-planner tests: stratification, allocation, and estimators.

The estimator-correctness contract (:mod:`repro.swifi.planner`): a
stratified plan at full budget reproduces the exhaustive rates exactly;
estimates converge toward ground truth as the budget grows; and the
normal confidence intervals attain roughly nominal coverage over many
seeded plans against a fixed ground-truth outcome table (no campaign
re-execution — outcomes are deterministic per spec, so the exhaustive
table doubles as an oracle for any subsample).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.program import HauberkProgram
from repro.errors import InjectionError
from repro.swifi import (
    Outcome,
    build_fault_specs,
    build_plan,
    compose_rates,
    run_campaign,
    select_targets,
    wilson_interval,
)
from repro.swifi.planner import (
    Stratum,
    StratumKey,
    _largest_remainder,
    allocate_neyman,
    bit_band,
    bootstrap_interval,
    estimate_plan,
    pilot_tallies,
    stratify,
    z_score,
)
from repro.workloads import get_workload


def _specs_for(name: str, max_sites: int = 10, masks: int = 2, seed: int = 3):
    import numpy as np

    wl = get_workload(name)
    inp = wl.generate_input(0)
    sites = select_targets(
        wl.kernel, max_sites, np.random.default_rng(seed)
    )
    return wl, build_fault_specs(
        sites, n_threads=inp.n_threads, masks_per_site=masks,
        bit_counts=(1, 2), seed=seed,
    )


def _exhaustive(name: str, **kwargs):
    wl, specs = _specs_for(name, **kwargs)
    result = run_campaign(HauberkProgram(wl), specs, mode="fift")
    return wl, specs, result


def _mock_trials(plan, outcomes):
    """Trial stand-ins from a ground-truth outcome table."""
    return [SimpleNamespace(outcome=outcomes[i]) for i in plan.selected]


# -- pure arithmetic ------------------------------------------------------


class TestArithmetic:
    def test_bit_band_boundaries(self):
        assert bit_band(1) == "low"
        assert bit_band(1 << 15) == "low"
        assert bit_band(1 << 16) == "mid"
        assert bit_band(1 << 25) == "mid"
        assert bit_band(1 << 26) == "high"
        assert bit_band((1 << 31) | 1) == "high"

    def test_z_score_known_values(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)
        with pytest.raises(InjectionError):
            z_score(1.0)

    def test_wilson_contains_point_estimate(self):
        for k, n in [(0, 10), (3, 10), (10, 10), (1, 1)]:
            lo, hi = wilson_interval(k, n)
            assert 0.0 <= lo <= k / n <= hi <= 1.0
            assert hi - lo > 0.0  # never a point interval

    def test_wilson_vacuous_on_empty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_compose_rates_weighted_mean(self):
        assert compose_rates([(10, 0.1), (30, 0.5)]) == \
            pytest.approx((10 * 0.1 + 30 * 0.5) / 40)
        assert compose_rates([]) == 0.0

    def test_largest_remainder_properties(self):
        weights = [5.0, 3.0, 1.0, 1.0]
        caps = [5, 3, 1, 1]
        alloc = _largest_remainder(weights, 6, caps)
        assert sum(alloc) == 6
        assert all(a <= c for a, c in zip(alloc, caps))
        assert all(a >= 1 for a in alloc)  # min-1 floor funded

    def test_largest_remainder_caps_bind(self):
        # budget exceeds population: every cell saturates at its cap
        assert _largest_remainder([1.0, 1.0], 10, [3, 2]) == [3, 2]


# -- stratification and plans ---------------------------------------------


class TestStratify:
    def test_partition_is_exact(self):
        wl, specs = _specs_for("CP")
        strata = stratify(specs, kernel=wl.kernel)
        seen = sorted(i for s in strata for i in s.indices)
        assert seen == list(range(len(specs)))
        assert [s.key for s in strata] == sorted(s.key for s in strata)

    def test_kernel_less_pseudo_section(self):
        _wl, specs = _specs_for("CP")
        strata = stratify(specs)
        assert {s.key.section for s in strata} == {"s?"}
        assert {s.key.sensitivity for s in strata} == {"unknown"}

    def test_coarsening_levers(self):
        wl, specs = _specs_for("CP")
        full = stratify(specs, kernel=wl.kernel)
        flat = stratify(specs, kernel=wl.kernel, thread_bands=1,
                        bit_bands=False)
        assert len(flat) <= len(full)
        assert {s.key.bit_band for s in flat} == {"all"}


class TestBuildPlan:
    def test_deterministic(self):
        wl, specs = _specs_for("CP")
        a = build_plan(specs, 12, kernel=wl.kernel, seed=7)
        b = build_plan(specs, 12, kernel=wl.kernel, seed=7)
        assert a.selected == b.selected
        c = build_plan(specs, 12, kernel=wl.kernel, seed=8)
        assert c.selected != a.selected

    def test_selected_sorted_unique_within_budget(self):
        wl, specs = _specs_for("CP")
        plan = build_plan(specs, 15, kernel=wl.kernel)
        assert plan.selected == sorted(set(plan.selected))
        assert len(plan.selected) <= 15
        assert plan.trials_saved == len(specs) - len(plan.selected)

    def test_budget_clamped_to_population(self):
        wl, specs = _specs_for("CP")
        plan = build_plan(specs, 10 ** 6, kernel=wl.kernel)
        assert plan.selected == list(range(len(specs)))
        assert plan.trials_saved == 0

    def test_coarsens_until_strata_fit_budget(self):
        wl, specs = _specs_for("CP")
        full = len(stratify(specs, kernel=wl.kernel))
        plan = build_plan(specs, 4, kernel=wl.kernel)
        # bit/thread axes collapse entirely; the section/sensitivity
        # axes are the floor (they carry the composition weights)
        assert len(plan.strata) < full
        assert {s.key.bit_band for s in plan.strata} == {"all"}
        assert {s.key.thread_band for s in plan.strata} == {0}

    def test_invalid_inputs_raise(self):
        wl, specs = _specs_for("CP")
        with pytest.raises(InjectionError):
            build_plan(specs, 0, kernel=wl.kernel)
        with pytest.raises(InjectionError):
            build_plan(specs, 5, kernel=wl.kernel, method="quota")

    def test_neyman_shifts_budget_toward_variance(self):
        keys = [
            StratumKey("s1", "fp", "low", 0),
            StratumKey("s1", "fp", "high", 0),
        ]
        strata = [
            Stratum(key=keys[0], indices=list(range(50))),
            Stratum(key=keys[1], indices=list(range(50, 100))),
        ]
        # pilot: stratum 0 near-deterministic, stratum 1 maximal variance
        allocate_neyman(strata, 20, {keys[0]: (10, 0), keys[1]: (10, 5)})
        assert strata[1].budget > strata[0].budget
        assert sum(s.budget for s in strata) == 20


# -- estimator correctness -------------------------------------------------


class TestEstimators:
    @pytest.mark.parametrize("workload", ["CP", "PNS"])
    def test_full_budget_reproduces_exhaustive(self, workload):
        wl, specs, result = _exhaustive(workload, max_sites=6, masks=2)
        truth = result.summary()
        plan = build_plan(specs, len(specs), kernel=wl.kernel)
        est = estimate_plan(plan, result.trials)
        assert est["trials_saved"] == 0
        assert est["estimates"]["sdc_ratio"]["value"] == \
            pytest.approx(truth["sdc_ratio"])
        assert est["composed_sdc_ratio"] == pytest.approx(truth["sdc_ratio"])
        assert est["estimates"]["coverage"]["value"] == \
            pytest.approx(1.0 - truth["sdc_ratio"])

    def test_estimates_converge_with_budget(self):
        wl, specs, result = _exhaustive("CP", max_sites=8, masks=2)
        truth = result.summary()["sdc_ratio"]
        outcomes = [t.outcome for t in result.trials]
        errors = []
        for budget in (len(specs) // 4, len(specs) // 2, len(specs)):
            errs = []
            for seed in range(8):
                plan = build_plan(specs, budget, kernel=wl.kernel, seed=seed)
                est = estimate_plan(plan, _mock_trials(plan, outcomes))
                errs.append(abs(est["estimates"]["sdc_ratio"]["value"] - truth))
            errors.append(sum(errs) / len(errs))
        assert errors[-1] == pytest.approx(0.0, abs=1e-12)
        assert errors[-1] <= errors[0]

    @pytest.mark.parametrize("workload", ["CP", "PNS"])
    def test_ci_nominal_coverage(self, workload):
        wl, specs, result = _exhaustive(workload, max_sites=8, masks=2)
        truth = result.summary()["sdc_ratio"]
        outcomes = [t.outcome for t in result.trials]
        budget = max(1, len(specs) // 4)
        hits = 0
        n_plans = 120
        for seed in range(n_plans):
            plan = build_plan(specs, budget, kernel=wl.kernel, seed=seed)
            est = estimate_plan(plan, _mock_trials(plan, outcomes))
            lo, hi = est["estimates"]["sdc_ratio"]["ci"]
            hits += lo - 1e-12 <= truth <= hi + 1e-12
        # nominal 95%; the Laplace-smoothed variance is conservative,
        # so demand at least ~85% over 120 seeded plans
        assert hits / n_plans >= 0.85

    def test_worker_killed_excluded_from_rates(self):
        wl, specs = _specs_for("CP", max_sites=4, masks=1)
        plan = build_plan(specs, len(specs), kernel=wl.kernel)
        outcomes = [Outcome.UNDETECTED] * len(specs)
        outcomes[plan.selected[0]] = Outcome.WORKER_KILLED
        est = estimate_plan(plan, _mock_trials(plan, outcomes))
        # every modelled trial is an SDC; the operational record does
        # not dilute the rate
        assert est["estimates"]["sdc_ratio"]["value"] == pytest.approx(1.0)

    def test_trial_count_mismatch_raises(self):
        wl, specs = _specs_for("CP", max_sites=4, masks=1)
        plan = build_plan(specs, 5, kernel=wl.kernel)
        with pytest.raises(InjectionError):
            estimate_plan(plan, [])

    def test_composition_identity(self):
        wl, specs, result = _exhaustive("CP", max_sites=8, masks=2)
        plan = build_plan(specs, len(specs) // 2, kernel=wl.kernel, seed=2)
        est = estimate_plan(plan, _mock_trials(
            plan, [t.outcome for t in result.trials]
        ))
        # per-section composition reuses the stratified weights, so it
        # must reproduce the overall estimate exactly
        assert est["composed_sdc_ratio"] == \
            pytest.approx(est["estimates"]["sdc_ratio"]["value"])

    def test_bootstrap_brackets_point_estimate(self):
        wl, specs, result = _exhaustive("CP", max_sites=6, masks=2)
        plan = build_plan(specs, len(specs) // 2, kernel=wl.kernel, seed=4)
        trials = _mock_trials(plan, [t.outcome for t in result.trials])
        est = estimate_plan(plan, trials)
        lo, hi = bootstrap_interval(plan, trials, seed=11)
        assert 0.0 <= lo <= hi <= 1.0
        value = est["estimates"]["sdc_ratio"]["value"]
        assert lo - 0.25 <= value <= hi + 0.25

    def test_pilot_tallies_shape(self):
        wl, specs, result = _exhaustive("CP", max_sites=6, masks=2)
        plan = build_plan(specs, len(specs) // 2, kernel=wl.kernel)
        tallies = pilot_tallies(
            plan, _mock_trials(plan, [t.outcome for t in result.trials])
        )
        assert set(tallies) == {s.key for s in plan.strata}
        assert sum(n for n, _k in tallies.values()) == len(plan.selected)


# -- end-to-end through run_campaign --------------------------------------


class TestPlannedCampaign:
    def test_budgeted_run_attaches_plan(self):
        from repro.swifi import CampaignOptions

        wl, specs = _specs_for("CP", max_sites=6, masks=2)
        options = CampaignOptions(budget=max(4, len(specs) // 5))
        result = run_campaign(HauberkProgram(wl), specs, mode="fift",
                              options=options)
        assert len(result.trials) <= options.budget
        summary = result.summary()
        assert summary["plan"]["population"] == len(specs)
        assert summary["plan"]["trials_saved"] == \
            len(specs) - len(result.trials)
        lo, hi = summary["plan"]["estimates"]["sdc_ratio"]["ci"]
        assert 0.0 <= lo <= hi <= 1.0

    def test_budgeted_run_deterministic(self):
        from repro.swifi import CampaignOptions

        wl, specs = _specs_for("PNS", max_sites=5, masks=2)
        options = CampaignOptions(budget=8)
        a = run_campaign(HauberkProgram(wl), specs, "fift", options)
        b = run_campaign(HauberkProgram(get_workload("PNS")), specs, "fift",
                         options)
        assert a.summary() == b.summary()

    def test_neyman_runs_pilot_then_allocates(self):
        from repro.swifi import CampaignOptions

        wl, specs = _specs_for("CP", max_sites=6, masks=2)
        options = CampaignOptions(budget=10, plan="neyman")
        result = run_campaign(HauberkProgram(wl), specs, "fift", options)
        assert result.summary()["plan"]["method"] == "neyman"
        assert len(result.trials) <= 10
