"""Property-based tests of the HAUBERK-NL zero-sum checksum invariant.

Hypothesis generates random straight-line/branching/looping kernels;
for every generated program the NL-instrumented build must validate,
execute, and report checksum == 0 and mismatch == 0 on a fault-free
run — the invariant everything in Section V.A rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.core.controlblock import ControlBlock
from repro.core.ftlib import HauberkFTLibrary
from repro.core.nonloop import apply_nonloop_detectors
from repro.core.loopdet import apply_loop_detectors
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir.astnodes import (
    Assign,
    BinOp,
    Const,
    Decl,
    For,
    If,
    Kernel,
    KernelParam,
    Store,
    Var,
)
from repro.kir.types import DType
from repro.kir.validate import validate_kernel


def _flat(items):
    out = []
    for s in items:
        if isinstance(s, list):
            out.extend(s)
        else:
            out.append(s)
    return out


class _KernelGen:
    """Builds a random but always-valid kernel from a hypothesis plan."""

    def __init__(self, plan):
        self.plan = iter(plan)
        self.counter = 0
        self.int_vars = ["n"]
        self.float_vars = ["seedv"]

    def _next(self, default=0):
        return next(self.plan, default)

    def fresh(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    def int_expr(self):
        kind = self._next() % 3
        if kind == 0:
            return Const(self._next() % 7 + 1)
        if kind == 1:
            return Var(self.int_vars[self._next() % len(self.int_vars)])
        op = ("+", "-", "*")[self._next() % 3]
        return BinOp(op, self.int_expr_simple(), self.int_expr_simple())

    def int_expr_simple(self):
        if self._next() % 2:
            return Const(self._next() % 5 + 1)
        return Var(self.int_vars[self._next() % len(self.int_vars)])

    def float_expr(self):
        kind = self._next() % 3
        if kind == 0:
            return Const(float(self._next() % 9) * 0.5 + 0.25)
        if kind == 1:
            return Var(self.float_vars[self._next() % len(self.float_vars)])
        op = ("+", "-", "*")[self._next() % 3]
        return BinOp(op, self.float_expr_simple(), self.float_expr_simple())

    def float_expr_simple(self):
        if self._next() % 2:
            return Const(float(self._next() % 9) * 0.25 + 0.5)
        return Var(self.float_vars[self._next() % len(self.float_vars)])

    def statement(self, depth):
        kind = self._next() % 6
        if kind in (0, 1):  # new decl
            if self._next() % 2:
                name = self.fresh("iv")
                stmt = Decl(name, DType.INT32, self.int_expr())
                self.int_vars.append(name)
            else:
                name = self.fresh("fv")
                stmt = Decl(name, DType.FLOAT32, self.float_expr())
                self.float_vars.append(name)
            return stmt
        if kind == 2 and len(self.float_vars) > 1:  # reassign
            name = self.float_vars[self._next() % len(self.float_vars)]
            if name == "seedv":
                name = self.float_vars[-1]
            return Assign(name, self.float_expr())
        if kind == 3 and depth < 2:  # branch (decls inside stay inside)
            cond = BinOp("<", self.int_expr_simple(), self.int_expr_simple())
            saved = (list(self.int_vars), list(self.float_vars))
            then = [self.statement(depth + 1) for _ in range(1 + self._next() % 2)]
            self.int_vars, self.float_vars = list(saved[0]), list(saved[1])
            els = [self.statement(depth + 1)] if self._next() % 2 else []
            self.int_vars, self.float_vars = saved
            return If(cond=cond, then=_flat(then), els=_flat(els))
        if kind == 4 and depth == 0:  # small loop with an accumulator
            accname = self.fresh("facc")
            self.float_vars.append(accname)
            it = self.fresh("it")
            body = [Assign(accname, BinOp("+", Var(accname), self.float_expr()))]
            return [
                Decl(accname, DType.FLOAT32, Const(0.0)),
                For(
                    init=Decl(it, DType.INT32, Const(0)),
                    cond=BinOp("<", Var(it), Const(self._next() % 4 + 1)),
                    update=Assign(it, BinOp("+", Var(it), Const(1))),
                    body=body,
                ),
            ]
        # fallback: int decl
        name = self.fresh("iv")
        stmt = Decl(name, DType.INT32, self.int_expr())
        self.int_vars.append(name)
        return stmt

    def build(self, n_stmts):
        body = []
        for _ in range(n_stmts):
            stmt = self.statement(0)
            if isinstance(stmt, list):
                body.extend(stmt)
            else:
                body.append(stmt)
        # store something so the kernel has output
        body.append(
            Store(ptr=Var("out"), index=Const(0),
                  value=Var(self.float_vars[-1]) if len(self.float_vars) > 1 else Const(1.0))
        )
        kernel = Kernel(
            name="gen",
            params=[
                KernelParam("n", DType.INT32),
                KernelParam("seedv", DType.FLOAT32),
                KernelParam("out", DType.PTR_FLOAT32),
            ],
            body=body,
        )
        validate_kernel(kernel)
        return kernel


class _Probe(HauberkFTLibrary):
    def __init__(self):
        super().__init__(ControlBlock())
        self.validations = []

    def lib_checksum_validate(self, ctx, frame, checksum, nl_mismatch):
        self.validations.append((checksum, nl_mismatch))


@settings(max_examples=40, deadline=None)
@given(
    plan=st.lists(st.integers(min_value=0, max_value=1000), min_size=30, max_size=120),
    n_stmts=st.integers(min_value=1, max_value=6),
    n_value=st.integers(min_value=0, max_value=9),
    seed_value=st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
)
def test_checksum_invariant_on_random_kernels(plan, n_stmts, n_value, seed_value):
    kernel = _KernelGen(plan).build(n_stmts)
    clone = kernel.clone()
    apply_nonloop_detectors(clone)
    validate_kernel(clone)

    device = Device()
    runtime = GPURuntime(device)
    out = device.memory.alloc("out", 4, DType.FLOAT32)
    probe = _Probe()
    runtime.launch(
        clone, 1, 2, {"n": n_value, "seedv": seed_value, "out": out}, lib=probe
    )
    assert probe.validations, "validate call must run in every thread"
    for checksum, mismatch in probe.validations:
        assert checksum == 0, "XOR pairs must cancel on every control path"
        assert mismatch == 0, "duplicate recomputation must agree"


@settings(max_examples=20, deadline=None)
@given(
    plan=st.lists(st.integers(min_value=0, max_value=1000), min_size=30, max_size=120),
    n_stmts=st.integers(min_value=1, max_value=5),
)
def test_full_ft_build_executes_on_random_kernels(plan, n_stmts):
    """L + NL together still validate and run on arbitrary kernels."""
    kernel = _KernelGen(plan).build(n_stmts)
    clone = kernel.clone()
    info = apply_loop_detectors(clone, maxvar=1)
    apply_nonloop_detectors(clone)
    validate_kernel(clone)

    device = Device()
    runtime = GPURuntime(device)
    out = device.memory.alloc("out", 4, DType.FLOAT32)
    cb = ControlBlock()
    cb.configure(info.configs)
    for cfg in info.configs:
        # train trivially wide so clean runs stay quiet
        from repro.core.ranges import RangeSet, ValueRange

        cfg.ranges = RangeSet(ranges=[ValueRange(-1e12, 1e12)])
    lib = HauberkFTLibrary(cb)
    runtime.launch(clone, 1, 2, {"n": 3, "seedv": 1.5, "out": out}, lib=lib)
    trip_events = [e for e in cb.events if e.kind == "trip"]
    assert not trip_events, "trip-count invariant must hold fault-free"
