"""Unit and property tests for repro.bits."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bits import (
    MaskGenerator,
    bit_count,
    bits_to_float,
    bits_to_int,
    decade_of,
    flip_f32_array,
    flip_float_bits,
    flip_int_bits,
    float_to_bits,
    int_to_bits,
    magnitude_change_bucket,
    random_mask,
    single_bit_mask,
    wrap_i32,
)
from repro.errors import InjectionError


class TestWrap:
    def test_identity_in_range(self):
        assert wrap_i32(123) == 123
        assert wrap_i32(-123) == -123

    def test_wraps_positive_overflow(self):
        assert wrap_i32(2**31) == -(2**31)
        assert wrap_i32(2**31 + 5) == -(2**31) + 5

    def test_wraps_negative_overflow(self):
        assert wrap_i32(-(2**31) - 1) == 2**31 - 1

    def test_extremes(self):
        assert wrap_i32(2**31 - 1) == 2**31 - 1
        assert wrap_i32(-(2**31)) == -(2**31)

    @given(st.integers())
    def test_range_invariant(self, x):
        v = wrap_i32(x)
        assert -(2**31) <= v < 2**31

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_fixed_point_on_i32(self, x):
        assert wrap_i32(x) == x


class TestFloatBits:
    def test_known_patterns(self):
        assert float_to_bits(1.0) == 0x3F800000
        assert float_to_bits(-2.0) == 0xC0000000
        assert float_to_bits(0.0) == 0

    def test_roundtrip_exact_f32(self):
        for v in (0.0, 1.0, -1.5, 0.25, 3.0e8, -1e-20):
            assert bits_to_float(float_to_bits(v)) == np.float32(v)

    def test_overflow_saturates_to_inf(self):
        assert bits_to_float(float_to_bits(1e200)) == math.inf
        assert bits_to_float(float_to_bits(-1e200)) == -math.inf

    def test_nan_roundtrip(self):
        bits = float_to_bits(float("nan"))
        assert math.isnan(bits_to_float(bits))

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_values_roundtrip(self, v):
        assert bits_to_float(float_to_bits(v)) == v

    def test_int_bits_roundtrip(self):
        for v in (0, 1, -1, 2**31 - 1, -(2**31)):
            assert bits_to_int(int_to_bits(v)) == v


class TestFlips:
    def test_float_flip_sign_bit(self):
        assert flip_float_bits(1.0, 1 << 31) == -1.0

    def test_int_flip_lsb(self):
        assert flip_int_bits(4, 1) == 5

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.integers(min_value=1, max_value=0xFFFFFFFF),
    )
    def test_float_flip_is_involution(self, v, mask):
        once = flip_float_bits(v, mask)
        twice = flip_float_bits(once, mask)
        if not math.isnan(once):  # NaN payloads round-trip too, but compare bits
            assert twice == v or (math.isnan(twice) and math.isnan(v))
        else:
            assert float_to_bits(twice) == float_to_bits(v)

    @given(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=1, max_value=0xFFFFFFFF),
    )
    def test_int_flip_is_involution(self, v, mask):
        assert flip_int_bits(flip_int_bits(v, mask), mask) == v


class TestMasks:
    def test_single_bit_mask(self):
        assert single_bit_mask(0) == 1
        assert single_bit_mask(31) == 1 << 31
        with pytest.raises(InjectionError):
            single_bit_mask(32)

    def test_bit_count(self):
        assert bit_count(0b1011) == 3
        assert bit_count(0xFFFFFFFF) == 32

    @given(st.integers(min_value=1, max_value=32))
    def test_random_mask_has_exact_bits(self, nbits):
        rng = np.random.default_rng(0)
        assert bit_count(random_mask(rng, nbits)) == nbits

    def test_random_mask_rejects_bad_counts(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InjectionError):
            random_mask(rng, 0)
        with pytest.raises(InjectionError):
            random_mask(rng, 33)

    def test_generator_is_deterministic(self):
        a = MaskGenerator(seed=5).masks(10, 3)
        b = MaskGenerator(seed=5).masks(10, 3)
        assert a == b
        assert all(bit_count(m) == 3 for m in a)

    def test_mixed_masks(self):
        gen = MaskGenerator(seed=1)
        masks = gen.mixed_masks(50, (1, 6, 15))
        assert {bit_count(m) for m in masks} <= {1, 6, 15}
        with pytest.raises(InjectionError):
            gen.mixed_masks(3, ())


class TestDecades:
    def test_decade_values(self):
        assert decade_of(1.0) == 0
        assert decade_of(999.0) == 2
        assert decade_of(-0.01) == -2
        assert decade_of(0.0) == -math.inf
        assert decade_of(float("inf")) == math.inf

    def test_magnitude_bucket_small_and_huge(self):
        assert magnitude_change_bucket(1.0, 1.0 + 1e-12) == "1E-15~1E-9"
        assert magnitude_change_bucket(1.0, 1e20) == ">1E+15"
        assert magnitude_change_bucket(1.0, float("nan")) == ">1E+15"
        assert magnitude_change_bucket(1.0, float("inf")) == ">1E+15"


class TestVectorFlip:
    def test_matches_scalar_flip(self):
        values = np.array([1.0, -2.5, 3e10, 1e-20], dtype=np.float32)
        masks = np.array([1 << 31, 1, 1 << 23, 1 << 30], dtype=np.uint32)
        out = flip_f32_array(values, masks)
        for v, m, o in zip(values, masks, out):
            expected = flip_float_bits(float(v), int(m))
            if math.isnan(expected):
                assert math.isnan(o)
            else:
                assert float(o) == expected

    def test_broadcast_single_mask(self):
        values = np.ones(8, dtype=np.float32)
        out = flip_f32_array(values, np.full(8, 1 << 31, dtype=np.uint32))
        assert (out == -1.0).all()
