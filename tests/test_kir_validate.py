"""Validation tests: typing rules, scoping, site numbering, loop marks."""

import pytest

from repro.errors import KIRParseError, KIRTypeError, KIRValidationError
from repro.kir import parse_kernel
from repro.kir.astnodes import Const, Decl, Kernel, KernelParam
from repro.kir.builder import decl_float, decl_int, make_kernel
from repro.kir.types import DType, parse_dtype, promote
from repro.kir.validate import validate_kernel


class TestTypes:
    def test_parse_dtype(self):
        assert parse_dtype("int") is DType.INT32
        assert parse_dtype("float *") is DType.PTR_FLOAT32
        with pytest.raises(KIRTypeError):
            parse_dtype("double")

    def test_promote(self):
        assert promote(DType.INT32, DType.INT32) is DType.INT32
        assert promote(DType.INT32, DType.FLOAT32) is DType.FLOAT32
        assert promote(DType.PTR_FLOAT32, DType.INT32) is DType.PTR_FLOAT32
        with pytest.raises(KIRTypeError):
            promote(DType.PTR_FLOAT32, DType.PTR_INT32)

    def test_sensitivity_classes(self):
        assert DType.PTR_FLOAT32.sensitivity_class == "pointer"
        assert DType.INT32.sensitivity_class == "integer"
        assert DType.FLOAT32.sensitivity_class == "fp"


class TestSiteNumbering:
    def test_params_come_first(self):
        k = parse_kernel("kernel p(int a, float b) { int x = a; x = x + 1; }")
        assert [p.site for p in k.params] == [0, 1]
        assert k.body[0].site == 2
        assert k.body[1].site == 3
        assert k.n_sites == 4

    def test_loop_header_sites(self):
        k = parse_kernel(
            "kernel p(int n) { for (int i = 0; i < n; i++) { int y = i; } }"
        )
        loop = k.body[0]
        assert loop.init.site >= 0
        assert loop.update.site >= 0
        assert loop.init.site != loop.update.site

    def test_revalidation_renumbers(self):
        k = parse_kernel("kernel p(int n) { int x = n; }")
        first = k.body[0].site
        k.body.insert(0, Decl("z", DType.INT32, Const(0)))
        k.validated = False
        validate_kernel(k)
        assert k.body[0].site == 1  # param is 0
        assert k.body[1].site == first + 1


class TestLoopMarks:
    def test_in_loop_flags(self):
        k = parse_kernel(
            """
kernel p(int n, float* o) {
    int before = 0;
    for (int i = 0; i < n; i++) {
        int inside = i;
        if (inside > 2) {
            int branch = 1;
        }
    }
    o[0] = 1.0;
}
"""
        )
        loop = k.body[1]
        assert not k.body[0].in_loop
        assert loop.body[0].in_loop
        assert loop.body[1].then[0].in_loop
        assert loop.update.in_loop
        assert not loop.init.in_loop

    def test_nested_loops_get_distinct_ids(self):
        k = parse_kernel(
            """
kernel p(int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            int x = i + j;
        }
    }
}
"""
        )
        outer = k.body[0]
        inner = outer.body[0]
        assert outer.loop_id != inner.loop_id
        assert inner.body[0].loop_id == inner.loop_id


class TestTypeRules:
    @pytest.mark.parametrize(
        "src",
        [
            "kernel p(float a) { int x = a % 2; }",  # float modulo
            "kernel p(float a) { int x = a & 1; }",  # float bitwise
            "kernel p(float* a) { float x = a; }",  # pointer into scalar
            "kernel p(float* a, int* b) { int x = a < b; }",  # mixed ptr compare
            "kernel p(float* a) { a[1.5] = 0.0; }",  # float index
            "kernel p(int n) { __syncthreads(); hauberk(n); }",  # non-__ libcall
        ],
    )
    def test_rejected(self, src):
        with pytest.raises((KIRParseError, KIRTypeError, KIRValidationError)):
            parse_kernel(src)

    def test_same_pointer_compare_allowed(self):
        k = parse_kernel("kernel p(float* a, float* b) { int e = a == b; }")
        assert k.validated

    def test_int_cast_of_pointer_allowed(self):
        k = parse_kernel("kernel p(float* a) { int bits = int(a); }")
        assert k.validated

    def test_implicit_conversions_annotated(self):
        k = parse_kernel("kernel p(int n) { float f = 0.0; f = n; int i = 0; i = f; }")
        assert k.body[1].target_dtype is DType.FLOAT32
        assert k.body[3].target_dtype is DType.INT32

    def test_assign_marks_target_dtype(self):
        k = parse_kernel("kernel p(int n) { int x = 0; x = n; }")
        assert k.body[1].target_dtype is DType.INT32


class TestKernelLevelChecks:
    def test_duplicate_params(self):
        kernel = Kernel(
            name="dup",
            params=[KernelParam("a", DType.INT32), KernelParam("a", DType.INT32)],
        )
        with pytest.raises(KIRValidationError):
            validate_kernel(kernel)

    def test_shared_size_positive(self):
        with pytest.raises(KIRValidationError):
            parse_kernel("kernel p(int n) { shared int s[0]; int x = n; }")

    def test_builder_make_kernel(self):
        k = make_kernel(
            "b", [("n", DType.INT32)], [decl_int("x", 1), decl_float("y", 2.5)]
        )
        assert k.validated and k.n_sites == 3

    def test_uses_sync_flag(self):
        k = parse_kernel("kernel p(int n) { shared int s[4]; __syncthreads(); }")
        assert k.uses_sync

    def test_shared_mem_words(self):
        k = parse_kernel(
            "kernel p(int n) { shared int a[10]; shared float b[6]; int x = n; }"
        )
        assert k.shared_mem_words == 16
