"""Builder-API tests and experiment-scale config tests."""

import pytest

from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.harness.config import BENCH, LOOPY, SMOKE
from repro.kir import kernel_to_source
from repro.kir.builder import (
    add,
    assign,
    call,
    decl_float,
    decl_int,
    div,
    eq,
    expr,
    for_range,
    if_,
    inc,
    libcall,
    load,
    make_kernel,
    mul,
    ne,
    neg,
    sub,
    thread_linear_index,
    var,
)
from repro.kir.astnodes import Const, SpecialReg, Var
from repro.kir.types import DType


class TestExprCoercion:
    def test_literals(self):
        assert isinstance(expr(3), Const)
        assert isinstance(expr(2.5), Const)
        assert expr(True).value == 1

    def test_names_and_registers(self):
        assert isinstance(expr("x"), Var)
        assert isinstance(expr("threadIdx.x"), SpecialReg)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            expr(object())


class TestBuiltKernels:
    def test_sum_kernel_via_builder(self):
        body = [
            decl_int("tid", thread_linear_index()),
            decl_float("s", 0.0),
            for_range("i", "n", [
                assign("s", add(var("s"), load(var("data"), var("i")))),
            ]),
            if_(ne("tid", 0), [assign("s", mul("s", 2.0))],
                [assign("s", sub("s", 1.0))]),
        ]
        kernel = make_kernel(
            "bsum",
            [("data", DType.PTR_FLOAT32), ("out", DType.PTR_FLOAT32),
             ("n", DType.INT32)],
            body,
        )
        assert kernel.validated
        text = kernel_to_source(kernel)
        assert "for (int i = 0; i < n;" in text

    def test_for_range_start_step(self):
        loop = for_range("j", 10, [inc("j", 0)], start=2, step=3)
        # structure only; validation happens inside a kernel
        assert loop.init.init.value == 2

    def test_helpers_produce_expected_ops(self):
        assert div(1.0, 2.0).op == "/"
        assert eq(1, 1).op == "=="
        assert neg(5).op == "-"
        assert call("sqrt", 2.0).func == "sqrt"
        assert libcall("__hauberk_fi", 1, "x").func == "__hauberk_fi"

    def test_builder_kernel_executes(self):
        kernel = make_kernel(
            "double_it",
            [("data", DType.PTR_FLOAT32), ("n", DType.INT32)],
            [
                decl_int("i", thread_linear_index()),
                if_(ne("i", "n"), [], []),  # exercise empty branches
                for_range("k", 1, []),  # empty loop body
            ],
        )
        device = Device()
        d = device.memory.alloc("d", 4, DType.FLOAT32)
        GPURuntime(device).launch(kernel, 1, 4, {"data": d, "n": 4})


class TestScales:
    def test_presets_ordered(self):
        assert SMOKE.masks_per_site <= BENCH.masks_per_site
        assert SMOKE.fig15_samples < BENCH.fig15_samples
        assert set(SMOKE.bit_counts) <= set(BENCH.bit_counts)

    def test_loopy_grows_workloads(self):
        assert LOOPY.workload_kwargs["CP"]["numatoms"] > 24
        assert BENCH.workload_kwargs == {}

    def test_frozen(self):
        with pytest.raises(Exception):
            SMOKE.masks_per_site = 99
