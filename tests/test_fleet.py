"""Campaign fleet service: wire schema, leases, and parity guarantees.

The fleet's contract is the same as every other execution path's:
coordinator + N workers is **bit-identical** to ``workers=1`` — for any
worker count, after a worker is killed mid-campaign, and across a
coordinator kill/resume split.  The parity tests here compare summary
dictionaries and per-trial outcome sequences (both are exact-equality
comparisons over every float the campaign produces).

Workers come in two flavours: *threaded* (``worker_main(detach=False)``
in a thread of this process — full socket protocol, no spawn cost) for
the broad parity matrix, and *spawned* (real separate interpreters) for
the end-to-end ``options.fleet`` path and the kill -9 test.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.exec.pool import spawn_available
from repro.exec.retry import FakeClock, RetryPolicy
from repro.fleet import (
    STATUS_VERSION,
    CampaignEnvelope,
    FleetCoordinator,
    FleetError,
    LeaseTable,
    ProgramRecipe,
    WireError,
    envelope_for,
    parse_endpoint,
    worker_main,
)
from repro.fleet.wire import (
    decode_observation,
    decode_options,
    decode_spec,
    encode_observation,
    encode_options,
    encode_spec,
)
from repro.obs.metrics import fresh_registry, get_registry
from repro.swifi.campaign import build_fault_specs
from repro.swifi.options import CampaignOptions
from repro.swifi.parallel import (
    build_trial_runner,
    execute_chunk,
    run_campaign,
)
from repro.swifi.targets import enumerate_targets

needs_spawn = pytest.mark.skipif(
    not spawn_available(), reason="requires the spawn start method"
)


def _program(workload="CP", train_seeds=(), alpha=None):
    return ProgramRecipe(
        workload=workload, train_seeds=tuple(train_seeds), alpha=alpha
    ).build_program()


def _specs(program, n=6, seed=11):
    inp = program.workload.generate_input(0)
    return build_fault_specs(
        enumerate_targets(program.workload.kernel), inp.n_threads,
        masks_per_site=2, seed=seed,
    )[:n]


def _trial_outcomes(result):
    return [(t.spec.site, t.spec.mask, t.outcome.value) for t in result.trials]


def _threaded_workers(coordinator, count):
    threads = []
    for k in range(count):
        thread = threading.Thread(
            target=worker_main,
            args=(coordinator.host, coordinator.port, f"t{k}"),
            kwargs={"detach": False},
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    return threads


class TestWireCodecs:
    def test_spec_round_trip(self):
        program = _program()
        for spec in _specs(program, n=4):
            encoded = encode_spec(spec)
            assert decode_spec(encoded) == spec

    def test_observation_round_trip(self):
        program = _program()
        specs = _specs(program, n=2)
        runner = build_trial_runner(program, "fi", CampaignOptions())
        chunk = execute_chunk(runner, list(enumerate(specs)))
        for obs in chunk.observations:
            assert decode_observation(encode_observation(obs)) == obs

    def test_options_ship_execution_fields_only(self):
        options = CampaignOptions(
            seed=7, differential=False, trial_timeout=2.5,
            workers=8, run_dir="/nope", progress=True,
        )
        encoded = encode_options(options)
        assert encoded == {
            "seed": 7, "differential": False, "trial_timeout": 2.5,
        }
        decoded = decode_options(encoded)
        assert decoded.seed == 7
        assert decoded.differential is False
        assert decoded.workers == 1  # coordinator-local knob: never shipped

    def test_decode_options_rejects_non_execution_fields(self):
        with pytest.raises(WireError, match="non-execution"):
            decode_options({"seed": 0, "workers": 4})

    def test_envelope_round_trip(self):
        program = _program(train_seeds=(1,), alpha=1000.0)
        specs = _specs(program, n=3)
        envelope = envelope_for(program, specs, "fift", CampaignOptions(seed=3))
        rebuilt = CampaignEnvelope.from_dict(envelope.to_dict())
        assert rebuilt.mode == "fift"
        assert rebuilt.recipe == envelope.recipe
        assert list(rebuilt.specs) == list(specs)
        assert rebuilt.options.seed == 3

    def test_envelope_version_gate(self):
        program = _program()
        data = envelope_for(program, _specs(program, 1), "fi",
                            CampaignOptions()).to_dict()
        data["v"] = 99
        with pytest.raises(WireError, match="version"):
            CampaignEnvelope.from_dict(data)

    def test_envelope_requires_a_recipe(self):
        # registry-built workloads auto-derive a recipe; a directly
        # instantiated one is not rebuildable remotely and must refuse
        from repro.core.program import HauberkProgram
        from repro.workloads.base import _REGISTRY

        bare = HauberkProgram(_REGISTRY["CP"]())
        assert bare.recipe is None
        with pytest.raises(WireError, match="recipe"):
            envelope_for(bare, [], "fi", CampaignOptions())

    def test_registry_programs_auto_derive_a_recipe(self):
        from repro.core.program import HauberkProgram
        from repro.workloads import get_workload

        program = HauberkProgram(get_workload("CP"))
        assert program.recipe == ProgramRecipe(workload="CP")
        program.train(seeds=[0, 1])
        program.set_alpha(1000.0)
        assert program.recipe == ProgramRecipe(
            workload="CP", train_seeds=(0, 1), alpha=1000.0
        )

    def test_recipe_rebuild_is_deterministic(self):
        recipe = ProgramRecipe(workload="CP", train_seeds=(1, 2), alpha=1000.0)
        one, two = recipe.build_program(), recipe.build_program()
        assert one.recipe == two.recipe == recipe
        specs = _specs(one, n=4)
        r1 = run_campaign(one, specs, "fift", CampaignOptions())
        r2 = run_campaign(two, specs, "fift", CampaignOptions())
        assert r1.summary() == r2.summary()

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7070") == ("127.0.0.1", 7070)
        with pytest.raises(WireError):
            parse_endpoint("no-port-here")
        with pytest.raises(WireError):
            parse_endpoint("host:not-a-number")


class TestOptionsKnobs:
    def test_fleet_must_be_positive(self):
        with pytest.raises(ValueError, match="fleet"):
            CampaignOptions(fleet=0)

    def test_endpoint_must_be_host_port(self):
        with pytest.raises(ValueError, match="endpoint"):
            CampaignOptions(endpoint="just-a-host")

    def test_valid_knobs_pass(self):
        options = CampaignOptions(fleet=2, endpoint="127.0.0.1:7070")
        assert options.fleet == 2
        assert options.endpoint == "127.0.0.1:7070"


class TestLeaseTable:
    def test_grant_ids_are_sequential_and_deterministic(self):
        table = LeaseTable(ttl=10.0, clock=FakeClock())
        a = table.grant("w0", "run-1", (0, 1))
        b = table.grant("w1", "run-1", (2,))
        assert (a.lease_id, b.lease_id) == ("L000001", "L000002")
        assert len(table) == 2

    def test_beat_extends_the_deadline(self):
        clock = FakeClock()
        table = LeaseTable(ttl=10.0, clock=clock)
        lease = table.grant("w0", "run-1", (0,))
        clock.advance(8.0)
        assert table.beat(lease.lease_id)
        clock.advance(8.0)  # 16s since grant, 8s since beat: still alive
        assert table.expired() == []
        assert lease.beats == 1

    def test_expiry_removes_and_returns(self):
        clock = FakeClock()
        table = LeaseTable(ttl=5.0, clock=clock)
        lease = table.grant("w0", "run-1", (0, 1, 2))
        clock.advance(5.1)
        dead = table.expired()
        assert [d.lease_id for d in dead] == [lease.lease_id]
        assert len(table) == 0

    def test_no_resurrection_after_expiry(self):
        clock = FakeClock()
        table = LeaseTable(ttl=5.0, clock=clock)
        lease = table.grant("w0", "run-1", (0,))
        clock.advance(5.1)
        table.expired()
        assert not table.beat(lease.lease_id)
        assert len(table) == 0

    def test_release_worker_drops_only_its_leases(self):
        table = LeaseTable(ttl=10.0, clock=FakeClock())
        table.grant("w0", "run-1", (0,))
        keep = table.grant("w1", "run-1", (1,))
        dropped = table.release_worker("w0")
        assert len(dropped) == 1
        assert list(table.active) == [keep.lease_id]


class TestCoordinator:
    """Protocol + merge tests over real sockets, workers in threads."""

    @pytest.mark.parametrize("workload,mode", [
        ("CP", "fi"), ("CP", "fift"), ("PNS", "fi"), ("PNS", "fift"),
    ])
    def test_two_workers_bit_identical_to_workers_one(self, workload, mode):
        fresh_registry()
        train = (1,) if mode == "fift" else ()
        program = _program(workload, train_seeds=train)
        specs = _specs(program, n=6)
        baseline = run_campaign(
            ProgramRecipe(workload=workload, train_seeds=train)
            .build_program(),
            specs, mode, CampaignOptions(workers=1),
        )
        with FleetCoordinator() as coordinator:
            envelope = envelope_for(program, specs, mode, CampaignOptions())
            run_id = coordinator.submit(
                envelope, program=program, chunk_size=2
            )
            threads = _threaded_workers(coordinator, 2)
            run = coordinator.wait(run_id, timeout=120)
        for thread in threads:
            thread.join(timeout=10)
        assert run.result.summary() == baseline.summary()
        assert _trial_outcomes(run.result) == _trial_outcomes(baseline)

    def test_duplicate_results_are_deduplicated(self):
        program = _program()
        specs = _specs(program, n=4)
        runner = build_trial_runner(program, "fi", CampaignOptions())
        coordinator = FleetCoordinator(reap_interval=0)
        coordinator.start()
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(envelope, program=program)
            run = coordinator._runs[run_id]
            first = True
            while run.queue:
                indices = tuple(run.queue.popleft())
                chunk = execute_chunk(
                    runner, [(i, specs[i]) for i in indices]
                )
                lease = coordinator.leases.grant("wA", run_id, indices)
                coordinator.absorb_result(
                    "wA", lease.lease_id, run_id, list(indices),
                    chunk.observations,
                )
                if first:
                    # a slow twin reports the same chunk under a stale
                    # lease; the duplicate must not double-count
                    coordinator.absorb_result(
                        "wB", "L999999", run_id, list(indices),
                        chunk.observations,
                    )
                    first = False
            run = coordinator.wait(run_id, timeout=30)
            assert run.result.summary()["trials"] == len(specs)
            assert len(run.obs_by_index) == len(specs)
        finally:
            coordinator.stop()

    def test_expired_multi_item_lease_splits_in_half(self):
        fresh_registry()
        clock = FakeClock()
        program = _program()
        specs = _specs(program, n=4)
        coordinator = FleetCoordinator(
            lease_ttl=5.0, clock=clock, reap_interval=0
        )
        coordinator.start()
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(
                envelope, program=program, chunk_size=4
            )
            grant = coordinator.grant("w0", None)
            assert grant["type"] == "grant"
            assert grant["indices"] == [0, 1, 2, 3]
            clock.advance(5.1)
            dead = coordinator.reap()
            assert len(dead) == 1
            run = coordinator._runs[run_id]
            assert [tuple(c) for c in run.queue] == [(0, 1), (2, 3)]
            counters = get_registry().counter("repro_fleet_leases_total")
            assert counters.value(event="expired") == 1
            assert counters.value(event="reissued") == 2
        finally:
            coordinator.stop()

    def test_singleton_expiry_is_blamed_then_quarantined(self):
        fresh_registry()
        clock = FakeClock()
        program = _program()
        specs = _specs(program, n=2)
        coordinator = FleetCoordinator(
            lease_ttl=5.0, clock=clock, reap_interval=0,
            retry=RetryPolicy(max_deaths=2, backoff_base=0.0),
        )
        coordinator.start()
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(
                envelope, program=program, chunk_size=1
            )
            run = coordinator._runs[run_id]
            # strand the singleton lease on index 0: first expiry is an
            # attributable strike and a reissue
            assert coordinator.grant("w0", run_id)["indices"] == [0]
            clock.advance(5.1)
            coordinator.reap()
            assert run.ledger.deaths.get(0, 0) == 1
            assert 0 not in run.quarantines
            # the surviving spec runs normally in between
            runner = build_trial_runner(program, "fi", CampaignOptions())
            grant = coordinator.grant("w1", run_id)
            assert grant["indices"] == [1]
            chunk = execute_chunk(
                runner, [(i, specs[i]) for i in grant["indices"]]
            )
            coordinator.absorb_result(
                "w1", grant["lease"], run_id, grant["indices"],
                chunk.observations,
            )
            # stranding the reissued lease condemns and quarantines
            assert coordinator.grant("w0", run_id)["indices"] == [0]
            clock.advance(5.1)
            coordinator.reap()
            assert run.ledger.deaths.get(0, 0) == 2
            assert 0 in run.quarantines
            assert run.quarantines[0].note == "fleet lease expired 2x"
            result = coordinator.wait(run_id, timeout=30).result
            assert result.summary()["quarantined"] == 1
            assert result.summary()["outcomes"]["worker_killed"] == 1
        finally:
            coordinator.stop()

    def test_status_schema_golden(self):
        program = _program()
        specs = _specs(program, n=3)
        coordinator = FleetCoordinator(lease_ttl=12.5, reap_interval=0)
        coordinator.start()
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(envelope, program=program)
            # one registered worker holding one lease
            coordinator._dispatch({"type": "hello", "worker": "w0", "pid": 41})
            coordinator.grant("w0", run_id)
            status = coordinator.status()
            assert sorted(status) == [
                "active_leases", "lease_ttl", "queue_depth", "runs",
                "state", "type", "v", "workers",
            ]
            assert status["type"] == "status"
            assert status["v"] == STATUS_VERSION == 1
            assert status["state"] == "serving"
            assert status["lease_ttl"] == 12.5
            assert status["active_leases"] == 1
            assert status["workers"] == [{"id": "w0", "pid": 41, "leases": 1}]
            (run_doc,) = status["runs"]
            assert sorted(run_doc) == [
                "done", "quarantined", "run", "state", "total",
            ]
            assert run_doc["run"] == run_id
            assert run_doc["state"] == "running"
            assert run_doc["total"] == 3
        finally:
            coordinator.stop()

    def test_wait_timeout_raises(self):
        program = _program()
        specs = _specs(program, n=2)
        coordinator = FleetCoordinator(reap_interval=0)
        coordinator.start()
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(envelope, program=program)
            with pytest.raises(FleetError, match="still executing"):
                coordinator.wait(run_id, timeout=0.05)
            with pytest.raises(FleetError, match="unknown run"):
                coordinator.wait("run-999-deadbeef")
        finally:
            coordinator.stop()


class TestCoordinatorResume:
    def test_killed_coordinator_resumes_bit_identically(self, tmp_path):
        program = _program()
        specs = _specs(program, n=6)
        baseline = run_campaign(
            _program(), specs, "fi",
            CampaignOptions(workers=1, run_dir=str(tmp_path / "solo")),
        )
        runner = build_trial_runner(program, "fi", CampaignOptions())
        fleet_dir = str(tmp_path / "fleet")

        # first coordinator lands half the campaign, then "dies" (stop
        # without finishing; SIGKILL leaves strictly less state behind
        # than stop does, and the journal is append-crash-safe)
        first = FleetCoordinator(run_root=fleet_dir, reap_interval=0)
        first.start()
        envelope = envelope_for(program, specs, "fi", CampaignOptions())
        run_id = first.submit(envelope, program=program, chunk_size=3)
        run = first._runs[run_id]
        indices = tuple(run.queue.popleft())
        lease = first.leases.grant("w0", run_id, indices)
        chunk = execute_chunk(runner, [(i, specs[i]) for i in indices])
        first.absorb_result(
            "w0", lease.lease_id, run_id, list(indices), chunk.observations
        )
        first.stop()
        assert first._runs[run_id].state == "stopped"

        # the restarted coordinator replays the journaled prefix and
        # only leases out the remainder
        second = FleetCoordinator(
            run_root=fleet_dir, resume=True, reap_interval=0
        )
        second.start()
        try:
            run_id2 = second.submit(envelope, program=program, chunk_size=3)
            run2 = second._runs[run_id2]
            assert len(run2.replayed) == len(indices)
            assert sum(len(c) for c in run2.queue) == len(specs) - len(indices)
            threads = _threaded_workers(second, 1)
            result = second.wait(run_id2, timeout=120).result
        finally:
            second.stop()
        for thread in threads:
            thread.join(timeout=10)
        assert result.summary() == baseline.summary()
        assert _trial_outcomes(result) == _trial_outcomes(baseline)

    def test_fleet_journal_matches_workers_one_journal(self, tmp_path):
        import json

        program = _program()
        specs = _specs(program, n=6)
        run_campaign(
            _program(), specs, "fi",
            CampaignOptions(workers=1, run_dir=str(tmp_path / "solo")),
        )
        coordinator = FleetCoordinator(run_root=str(tmp_path / "fleet"))
        coordinator.start()
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(
                envelope, program=program, chunk_size=2
            )
            threads = _threaded_workers(coordinator, 2)
            coordinator.wait(run_id, timeout=120)
        finally:
            coordinator.stop()
        for thread in threads:
            thread.join(timeout=10)

        def trial_records(root):
            (fingerprint_dir,) = [
                p for p in (tmp_path / root).iterdir() if p.is_dir()
            ]
            records = [
                json.loads(line)
                for line in (fingerprint_dir / "journal.jsonl")
                .read_text().splitlines()
            ]
            return sorted(
                (r for r in records if "q" not in r), key=lambda r: r["i"]
            )

        solo, fleet = trial_records("solo"), trial_records("fleet")
        assert fleet == solo


@needs_spawn
@pytest.mark.slow
class TestSpawnFleet:
    """Real multi-process fleets: options.fleet end-to-end and kill -9."""

    def test_fleet_option_bit_identical_to_workers_one(self):
        program = _program()
        specs = _specs(program, n=6)
        baseline = run_campaign(
            _program(), specs, "fi", CampaignOptions(workers=1)
        )
        result = run_campaign(
            program, specs, "fi", CampaignOptions(fleet=2)
        )
        assert result.summary() == baseline.summary()
        assert _trial_outcomes(result) == _trial_outcomes(baseline)

    def test_kill_nine_worker_leases_reissue_and_campaign_completes(self):
        import multiprocessing

        fresh_registry()
        program = _program()
        specs = _specs(program, n=6)
        baseline = run_campaign(
            _program(), specs, "fi", CampaignOptions(workers=1)
        )
        coordinator = FleetCoordinator(lease_ttl=1.0)
        coordinator.start()
        victim = None
        threads = []
        try:
            envelope = envelope_for(program, specs, "fi", CampaignOptions())
            run_id = coordinator.submit(
                envelope, program=program, chunk_size=len(specs)
            )
            # one real spawned worker takes the single all-spec lease...
            ctx = multiprocessing.get_context("spawn")
            victim = ctx.Process(
                target=worker_main,
                args=(coordinator.host, coordinator.port, "victim"),
                daemon=True,
            )
            victim.start()
            deadline = time.monotonic() + 60
            while not coordinator.leases.active:
                assert time.monotonic() < deadline, "lease never granted"
                time.sleep(0.02)
            (lease_id,) = list(coordinator.leases.active)
            # ...and dies mid-build, silently
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # the TTL turns the silence into reissued chunks, which a
            # healthy worker then completes
            threads = _threaded_workers(coordinator, 1)
            run = coordinator.wait(run_id, timeout=120)
        finally:
            coordinator.stop()
            if victim is not None and victim.is_alive():
                victim.kill()
        for thread in threads:
            thread.join(timeout=10)
        assert lease_id not in coordinator.leases.active
        counters = get_registry().counter("repro_fleet_leases_total")
        assert counters.value(event="expired") >= 1
        assert counters.value(event="reissued") >= 2
        deaths = get_registry().counter("repro_swifi_worker_deaths_total")
        assert deaths.value(phase="lease") >= 1
        assert run.result.summary() == baseline.summary()
        assert _trial_outcomes(run.result) == _trial_outcomes(baseline)
