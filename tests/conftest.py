"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir.parser import parse_kernel
from repro.kir.types import DType


@pytest.fixture(autouse=True)
def _isolate_shared_kernel_caches():
    """Drop the process-wide parsed-kernel cache after every test.

    Workload kernels are shared by source text, and translated builds /
    compiled programs are cached on the kernel objects — great for
    campaigns, but across *tests* it would make metrics and translator
    behavior depend on execution order.
    """
    yield
    from repro.workloads.base import _PARSE_CACHE

    _PARSE_CACHE.clear()


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def runtime(device):
    return GPURuntime(device)


SAXPY_SRC = """
kernel saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float v = a * x[i] + y[i];
        y[i] = v;
    }
}
"""

ACCUM_SRC = """
kernel acc(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float energy = 0.0;
    for (int i = 0; i < n; i++) {
        float d = data[i] - float(tid);
        energy += d * d;
    }
    out[tid] = energy;
}
"""


@pytest.fixture
def saxpy_kernel():
    return parse_kernel(SAXPY_SRC)


@pytest.fixture
def accum_kernel():
    return parse_kernel(ACCUM_SRC)


def launch_saxpy(runtime, kernel, n=64, a=2.0, lib=None):
    """Helper running saxpy over n elements; returns (result, output)."""
    device = runtime.device
    device.memory.reset()
    xs = np.arange(n, dtype=np.float32)
    ys = np.ones(n, dtype=np.float32)
    ax = device.memory.alloc("x", n, DType.FLOAT32)
    ay = device.memory.alloc("y", n, DType.FLOAT32)
    device.memory.memcpy_htod(ax, xs)
    device.memory.memcpy_htod(ay, ys)
    result = runtime.launch(
        kernel, grid=(n + 31) // 32, block=32,
        args={"x": ax, "y": ay, "a": a, "n": n}, lib=lib,
    )
    return result, device.memory.memcpy_dtoh(ay)
