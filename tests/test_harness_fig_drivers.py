"""Unit tests of harness driver internals (result containers, helpers)."""


import numpy as np
import pytest

from repro.harness.fig01_sensitivity import Fig01Result, SensitivityRow
from repro.harness.fig02_memory import Fig02Row
from repro.harness.fig13_overhead import Fig13Result, OverheadRow
from repro.harness.fig14_coverage import Fig14Result
from repro.harness.fig15_bitflip import _random_masks
from repro.harness.fig16_falsepos import Fig16Result
from repro.swifi.outcomes import Outcome, OutcomeCounts


class TestFig01Containers:
    def test_row_lookup(self):
        result = Fig01Result(rows=[SensitivityRow("g", "fp", 0.1, 0.2, 0.7, 10)])
        assert result.row("g", "fp").sdc == 0.2
        with pytest.raises(KeyError):
            result.row("g", "pointer")


class TestFig02Row:
    def test_dominance_orders(self):
        row = Fig02Row("x", fp_bytes=1e6, int_bytes=90.0, ptr_bytes=10.0)
        assert row.fp_dominance_orders == pytest.approx(4.0)

    def test_degenerate(self):
        assert Fig02Row("x", 0.0, 1.0, 0.0).fp_dominance_orders == 0.0


class TestFig13Averages:
    def test_averages_skip_nocompile(self):
        result = Fig13Result(rows=[
            OverheadRow("A", 100.0, 90.0, 5.0, 3.0, 8.0),
            OverheadRow("TPACF", 100.0, None, 2.0, 3.0, 5.0),
            OverheadRow("RPES", 100.0, 80.0, 50.0, 10.0, 60.0),
        ])
        avg = result.averages()
        assert avg["rscatter"] == pytest.approx(85.0)  # None excluded
        assert avg["hauberk_excl_rpes"] == pytest.approx(6.5)
        with pytest.raises(KeyError):
            result.row("NOPE")


class TestFig14Aggregation:
    def _counts(self, undetected, masked):
        c = OutcomeCounts()
        for _ in range(undetected):
            c.add(Outcome.UNDETECTED)
        for _ in range(masked):
            c.add(Outcome.MASKED)
        return c

    def test_average_coverage(self):
        result = Fig14Result(cells={
            ("A", 1): self._counts(1, 9),   # coverage 0.9
            ("B", 1): self._counts(3, 7),   # coverage 0.7
            ("A", 6): self._counts(5, 5),   # coverage 0.5
        })
        assert result.average_coverage(1) == pytest.approx(0.8)
        assert result.average_coverage() == pytest.approx((0.9 + 0.7 + 0.5) / 3)
        assert result.fraction(Outcome.MASKED, 1) == pytest.approx(0.8)


class TestFig15Masks:
    def test_exact_bit_counts(self):
        rng = np.random.default_rng(0)
        for bits in (1, 6, 15):
            masks = _random_masks(rng, 200, bits)
            counts = np.array([bin(int(m)).count("1") for m in masks])
            assert (counts == bits).all()

    def test_masks_fit_32_bits(self):
        rng = np.random.default_rng(1)
        masks = _random_masks(rng, 100, 15)
        assert (masks <= 0xFFFFFFFF).all()


class TestFig16Series:
    def test_series_filters_alpha(self):
        result = Fig16Result(ratios={
            ("P", 1.0, 1): 0.5, ("P", 1.0, 7): 0.1,
            ("P", 10.0, 1): 0.2, ("Q", 1.0, 1): 0.9,
        })
        assert result.series("P") == {1: 0.5, 7: 0.1}
        assert result.series("P", alpha=10.0) == {1: 0.2}
        assert result.series("Q") == {1: 0.9}
