"""Workload tests: kernel-vs-golden equivalence, specs, registry, sizes."""

import numpy as np
import pytest

from repro.core.program import HauberkProgram, RunStatus
from repro.errors import WorkloadError
from repro.workloads import all_workloads, get_workload
from repro.workloads.spec import (
    MRIQ_SPEC,
    PNS_SPEC,
    RPES_SPEC,
    ToleranceSpec,
    exact_spec,
    percent_spec,
)

HPC = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF")


class TestToleranceSpec:
    def test_exact(self):
        spec = exact_spec()
        g = np.array([1.0, 2.0])
        assert spec.check(g.copy(), g)
        assert not spec.check(np.array([1.0, 2.0001]), g)

    def test_percent(self):
        spec = percent_spec(0.01)
        g = np.array([100.0])
        assert spec.check(np.array([100.9]), g)
        assert not spec.check(np.array([101.2]), g)

    def test_max_mode_pns(self):
        g = np.array([0.001, 100.0])
        # tolerance is max(0.01, 1%) elementwise
        assert PNS_SPEC.check(np.array([0.009, 100.9]), g)
        assert not PNS_SPEC.check(np.array([0.012, 100.0]), g)

    def test_sum_mode_rpes(self):
        g = np.array([10.0])
        assert RPES_SPEC.check(np.array([10.2]), g)
        assert not RPES_SPEC.check(np.array([10.21]), g)

    def test_global_term_mriq(self):
        g = np.array([1000.0, 0.0001])
        tol = MRIQ_SPEC.tolerance(g)
        assert tol[1] == pytest.approx(1e-4 * 1000.0)  # global term dominates

    def test_nonfinite_output_fails(self):
        spec = percent_spec()
        g = np.array([1.0])
        assert not spec.check(np.array([np.inf]), g)
        assert not spec.check(np.array([np.nan]), g)

    def test_shape_mismatch_fails(self):
        assert not exact_spec().check(np.zeros(3), np.zeros(4))

    def test_violations_count(self):
        spec = percent_spec(0.01)
        g = np.ones(4)
        out = np.array([1.0, 2.0, 1.0, 3.0])
        assert spec.violations(out, g) == 2

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            ToleranceSpec(mode="bogus")
        with pytest.raises(WorkloadError):
            ToleranceSpec(rel=-1.0)


class TestRegistry:
    def test_all_registered(self):
        names = all_workloads()
        assert names[:7] == list(HPC)
        assert "OCEAN" in names and "RAYTRACE" in names

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("NOPE")

    def test_case_insensitive(self):
        assert get_workload("cp").name == "CP"


@pytest.mark.parametrize("name", HPC + ("OCEAN", "RAYTRACE"))
class TestGoldenEquivalence:
    def test_kernel_matches_golden(self, name):
        wl = get_workload(name)
        prog = HauberkProgram(wl)
        inp = wl.generate_input(3)
        result = prog.run(mode="original", inp=inp)
        assert result.status is RunStatus.OK
        assert wl.spec.check(result.output, wl.golden(inp)), name

    def test_inputs_deterministic(self, name):
        wl = get_workload(name)
        a = wl.generate_input(5)
        b = wl.generate_input(5)
        for ba, bb in zip(a.buffers, b.buffers):
            if ba.data is not None:
                assert np.array_equal(ba.data, bb.data)

    def test_different_seeds_differ(self, name):
        wl = get_workload(name)
        golden_a = wl.golden(wl.generate_input(0))
        golden_b = wl.golden(wl.generate_input(1))
        assert not np.array_equal(golden_a, golden_b)

    def test_memory_profile_positive(self, name):
        wl = get_workload(name)
        profile = wl.memory_profile(wl.generate_input(0))
        assert sum(profile.values()) > 0
        assert profile["pointer"] > 0  # kernels take buffer params


class TestWorkloadShapes:
    def test_rpes_is_nonloop_dominated(self):
        prog = HauberkProgram(get_workload("RPES"))
        result = prog.run(mode="original", seed=0)
        assert result.launch.loop_fraction < 0.6

    def test_loop_dominated_programs(self):
        for name in ("CP", "MRI-Q", "MRI-FHD", "PNS", "TPACF"):
            prog = HauberkProgram(get_workload(name))
            result = prog.run(mode="original", seed=0)
            assert result.launch.loop_fraction > 0.9, name

    def test_sad_is_integer_program(self):
        wl = get_workload("SAD")
        profile = wl.memory_profile(wl.generate_input(0))
        assert profile["integer"] > profile["fp"]
        assert wl.spec.abs_const == wl.spec.rel == 0.0  # exact

    def test_fp_programs_fp_dominated(self):
        for name in ("CP", "MRI-Q", "MRI-FHD", "RPES"):
            wl = get_workload(name)
            profile = wl.memory_profile(wl.generate_input(0))
            assert profile["fp"] > profile["integer"], name

    def test_tpacf_uses_over_half_shared_memory(self):
        from repro.gpu.device import GT200_SPEC

        wl = get_workload("TPACF")
        assert wl.kernel.shared_mem_words * 2 > GT200_SPEC.shared_mem_words
        assert wl.kernel.uses_sync

    def test_cp_unroll_requires_even_volx(self):
        with pytest.raises(ValueError):
            get_workload("CP", volx=7)

    def test_sad_dimension_check(self):
        with pytest.raises(ValueError):
            get_workload("SAD", width=10, mbsize=4)

    def test_workload_sizes_scale(self):
        small = HauberkProgram(get_workload("CP", numatoms=8)).run("original", seed=0)
        big = HauberkProgram(get_workload("CP", numatoms=32)).run("original", seed=0)
        assert big.launch.total_cycles > 2 * small.launch.total_cycles


class TestGraphics:
    def test_perceptual_spec_tolerates_single_pixel(self):
        from repro.workloads.graphics import frame_corruption_stats

        wl = get_workload("OCEAN")
        inp = wl.generate_input(0)
        golden = wl.golden(inp)
        corrupted = golden.copy()
        corrupted[5] += 0.5  # one blown pixel
        assert wl.spec.check(corrupted, golden)
        stats = frame_corruption_stats(corrupted, golden)
        assert stats.corrupted_pixels == 1

    def test_perceptual_spec_flags_stripe(self):
        wl = get_workload("OCEAN")
        inp = wl.generate_input(0)
        golden = wl.golden(inp)
        corrupted = golden.copy()
        corrupted[:: wl.width] += 0.5  # a vertical stripe
        assert not wl.spec.check(corrupted, golden)

    def test_render_frame_shape(self):
        wl = get_workload("RAYTRACE")
        inp = wl.generate_input(0)
        frame = wl.render_frame(wl.golden(inp))
        assert frame.shape == (wl.height, wl.width)
        assert 0.0 <= frame.min() and frame.max() <= 1.0
