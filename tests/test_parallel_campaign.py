"""Parallel campaign engine tests: parity, chunking, crashes, metrics.

The determinism contract under test: ``repro.swifi.run_campaign`` must
produce a bit-identical :class:`CampaignResult` for any worker count
(the parallel merge replays worker observations in spec order through
the same ``absorb_trial`` helper the serial loop uses).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.program import HauberkProgram
from repro.errors import InjectionError
from repro.exec import (
    chunk_slices,
    default_chunk_size,
    fork_available,
    resolve_workers,
)
from repro.kir.types import DType
from repro.obs.metrics import MetricsRegistry, fresh_registry
from repro.exec import RetryPolicy
from repro.swifi import (
    CampaignOptions,
    FaultSpec,
    build_fault_specs,
    enumerate_targets,
    run_campaign,
)
from repro.workloads.base import BufferSpec, Workload, WorkloadInput

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

TINY_SRC = """
kernel tiny(float* data, float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        float v = data[i] + float(tid);
        acc = acc + v * v;
    }
    out[tid] = acc;
}
"""

N_DATA = 6
N_THREADS = 4


class TinyWorkload(Workload):
    """Unregistered 4-thread workload keeping parallel tests fast."""

    name = "TINY"
    source = TINY_SRC

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 42)
        data = rng.uniform(0.5, 2.0, N_DATA).astype(np.float32)
        return WorkloadInput(
            buffers=[
                BufferSpec("data", DType.FLOAT32, N_DATA, data),
                BufferSpec("out", DType.FLOAT32, N_THREADS,
                           np.zeros(N_THREADS, dtype=np.float32)),
            ],
            scalars={"n": N_DATA},
            buffer_params={"data": "data", "out": "out"},
            outputs=["out"],
            grid=(1, 1),
            block=(N_THREADS, 1),
            meta={"data": data},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        data = inp.meta["data"].astype(np.float64)
        tids = np.arange(N_THREADS, dtype=np.float64)
        vals = data[None, :] + tids[:, None]
        return (vals * vals).sum(axis=1).astype(np.float32).astype(np.float64)


def _tiny_specs(masks_per_site: int = 2, seed: int = 5):
    wl = TinyWorkload()
    inp = wl.generate_input(0)
    specs = build_fault_specs(
        enumerate_targets(wl.kernel),
        n_threads=inp.n_threads,
        masks_per_site=masks_per_site,
        bit_counts=(1, 3),
        seed=seed,
    )
    return wl, specs


@pytest.fixture
def registry():
    reg = fresh_registry()
    yield reg
    fresh_registry()


# -- determinism parity ---------------------------------------------------


class TestParity:
    @needs_fork
    def test_parallel_matches_serial(self):
        wl, specs = _tiny_specs()
        serial = run_campaign(HauberkProgram(wl), specs, mode="fi",
                              options=CampaignOptions(workers=1))
        parallel = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=4),
        )
        assert parallel.summary() == serial.summary()
        assert [t.outcome for t in parallel.trials] == \
            [t.outcome for t in serial.trials]
        assert [t.observation for t in parallel.trials] == \
            [t.observation for t in serial.trials]
        assert [t.spec for t in parallel.trials] == specs

    @needs_fork
    @pytest.mark.parametrize("chunk_size", [1, 3, 1000])
    def test_any_chunk_size_matches_serial(self, chunk_size):
        wl, specs = _tiny_specs()
        serial = run_campaign(HauberkProgram(wl), specs, mode="fi",
                              options=CampaignOptions(workers=1))
        chunked = run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=2, chunk_size=chunk_size),
        )
        assert chunked.summary() == serial.summary()
        assert [t.outcome for t in chunked.trials] == \
            [t.outcome for t in serial.trials]

    def test_workers_one_short_circuits(self, monkeypatch):
        # with workers=1 the pool machinery must never be touched
        import repro.swifi.parallel as par
        monkeypatch.setattr(par, "ForkPool", None)
        wl, specs = _tiny_specs(masks_per_site=1)
        result = run_campaign(HauberkProgram(wl), specs, mode="fi",
                              options=CampaignOptions(workers=1))
        assert result.summary()["trials"] == len(specs)

    def test_empty_spec_list(self):
        result = run_campaign(
            HauberkProgram(TinyWorkload()), [], mode="fi",
            options=CampaignOptions(workers=4),
        )
        assert result.summary()["trials"] == 0
        assert result.trials == []

    @needs_fork
    def test_more_workers_than_specs(self):
        wl, specs = _tiny_specs(masks_per_site=1)
        few = specs[:2]
        serial = run_campaign(HauberkProgram(wl), few, mode="fi",
                              options=CampaignOptions(workers=1))
        wide = run_campaign(
            HauberkProgram(TinyWorkload()), few, mode="fi",
            options=CampaignOptions(workers=16),
        )
        assert wide.summary() == serial.summary()


# -- failure surfacing ----------------------------------------------------


def _crashing_runner_factory():
    def runner(spec):
        os._exit(13)  # hard death, no exception machinery

    return runner


def _raising_runner_factory():
    def runner(spec):
        raise ValueError("trial exploded")

    return runner


class TestFailures:
    @needs_fork
    def test_worker_crash_raises_injection_error(self):
        # strict mode (max_deaths=0) preserves the historical behaviour:
        # a dead worker fails the whole campaign
        specs = [FaultSpec(site=0, mask=1, thread=0, occurrence=1)] * 8
        options = CampaignOptions(workers=2, retry=RetryPolicy(max_deaths=0))
        with pytest.raises(InjectionError):
            run_campaign(
                None, specs, options=options,
                runner_factory=_crashing_runner_factory,
            )

    @needs_fork
    def test_worker_exception_propagates(self):
        specs = [FaultSpec(site=0, mask=1, thread=0, occurrence=1)] * 8
        with pytest.raises(ValueError, match="trial exploded"):
            run_campaign(
                None, specs, options=CampaignOptions(workers=2),
                runner_factory=_raising_runner_factory,
            )


# -- spec planning --------------------------------------------------------


class TestSpecStability:
    def test_same_seed_same_plan(self):
        wl = TinyWorkload()
        inp = wl.generate_input(0)
        sites = enumerate_targets(wl.kernel)
        a = build_fault_specs(sites, n_threads=inp.n_threads,
                              masks_per_site=3, seed=7)
        b = build_fault_specs(sites, n_threads=inp.n_threads,
                              masks_per_site=3, seed=7)
        assert a == b

    def test_different_seed_different_plan(self):
        wl = TinyWorkload()
        inp = wl.generate_input(0)
        sites = enumerate_targets(wl.kernel)
        a = build_fault_specs(sites, n_threads=inp.n_threads,
                              masks_per_site=3, seed=7)
        c = build_fault_specs(sites, n_threads=inp.n_threads,
                              masks_per_site=3, seed=8)
        assert a != c


# -- pool helpers ---------------------------------------------------------


class TestPoolHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") >= 1
        with pytest.raises(ValueError):
            resolve_workers(-2)
        with pytest.raises(ValueError):
            resolve_workers("lots")

    def test_chunk_slices(self):
        assert chunk_slices(0, 4) == []
        assert chunk_slices(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert chunk_slices(3, 99) == [(0, 3)]
        with pytest.raises(ValueError):
            chunk_slices(3, 0)
        with pytest.raises(ValueError):
            chunk_slices(-1, 4)

    def test_default_chunk_size(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(5, 8) == 1
        with pytest.raises(ValueError):
            default_chunk_size(10, 0)


# -- metrics merging ------------------------------------------------------


class TestMetricsMerge:
    def test_counters_add_gauges_overwrite(self):
        a = MetricsRegistry()
        a.counter("c", "h").inc(2, k="x")
        a.gauge("g", "h").set(5)
        b = MetricsRegistry()
        b.counter("c", "h").inc(3, k="x")
        b.counter("c", "h").inc(1, k="y")
        b.gauge("g", "h").set(7)
        a.merge_dict(b.as_dict())
        assert a.get("c").value(k="x") == 5
        assert a.get("c").value(k="y") == 1
        assert a.get("g").value() == 7

    def test_histograms_add(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2, 4)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 4)).observe(3.0)
        b.histogram("h", buckets=(1, 2, 4)).observe(0.5)
        a.merge_dict(b.as_dict())
        assert a.get("h").count() == 3
        assert a.get("h").sum() == 5.0

    def test_histogram_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 4)).observe(1.0)
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge_dict(b.as_dict())

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="mystery"):
            MetricsRegistry().merge_dict(
                {"x": {"type": "mystery", "samples": []}}
            )

    @needs_fork
    def test_parallel_metrics_match_serial(self, registry):
        wl, specs = _tiny_specs()
        serial_reg = fresh_registry()
        run_campaign(HauberkProgram(wl), specs, mode="fi",
                     options=CampaignOptions(workers=1))
        serial = serial_reg.as_dict()

        par_reg = fresh_registry()
        run_campaign(
            HauberkProgram(TinyWorkload()), specs, mode="fi",
            options=CampaignOptions(workers=3),
        )
        merged = par_reg.as_dict()
        # worker-side launch / trial metrics merge to the serial totals
        assert merged["repro_launch_total"] == serial["repro_launch_total"]
        assert merged["repro_trial_outcomes_total"] == \
            serial["repro_trial_outcomes_total"]
        # plus the engine's own gauges
        assert par_reg.get("repro_swifi_parallel_workers").value() == 3
        assert par_reg.get("repro_swifi_chunks_total").value() >= 1
