"""Sparse paged device memory: parity with the dense backing.

The paged store's contract is that it is *indistinguishable* from the
dense ``np.uint32`` array except in capacity and residency: every
workload, engine, and campaign mode must produce bit-identical results
over either backing.  Plus the page-level semantics the dense path
never had to define: allocations straddling page boundaries, bulk
fault injection spanning pages, lazy materialization preserving
binary32 special patterns, and copy-on-write snapshot isolation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.program import HauberkProgram
from repro.errors import DeviceMemoryError, GPUError
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.faults import inject_word_faults
from repro.gpu.memory import (
    GlobalMemory,
    PAGED_THRESHOLD_WORDS,
    PagedGlobalMemory,
)
from repro.gpu.paging import PagedSnapshot, PagedWords
from repro.gpu.runtime import GPURuntime
from repro.harness.fig02_memory import run_gb_scale
from repro.kir.types import DType
from repro.swifi.campaign import Campaign, build_fault_specs
from repro.swifi.targets import enumerate_targets
from repro.workloads import all_workloads, get_workload

#: Deliberately tiny pages so every workload's buffers straddle many.
SMALL_PAGE = 1 << 8

ENGINES = ("vector", "closure", "lockstep")

# Interesting binary32 patterns (see test_memory_space.py): signaling
# NaN payloads, denormals, -0.0 — the bits that die in any backing
# that round-trips through Python floats.
SNAN_BITS = 0x7F800001
SNAN_PAYLOAD_BITS = 0x7FA5A5A5
DENORM_MIN_BITS = 0x00000001
DENORM_MAX_BITS = 0x007FFFFF
NEG_ZERO_BITS = 0x80000000

SPECIAL_BITS = [
    SNAN_BITS, SNAN_PAYLOAD_BITS, 0x7FC00001, 0xFFC0DEAD,
    DENORM_MIN_BITS, DENORM_MAX_BITS, NEG_ZERO_BITS,
    0x7F800000, 0xFF800000, 0x7F7FFFFF, 0x00000000, 0xFFFFFFFF,
]

word_patterns = st.one_of(
    st.sampled_from(SPECIAL_BITS),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)


def _paged_device(page_words: int = SMALL_PAGE) -> Device:
    return Device(spec=DeviceSpec(paged=True, page_words=page_words))


def _paged_memory(capacity: int = 1 << 16,
                  page_words: int = SMALL_PAGE) -> PagedGlobalMemory:
    mem = PagedGlobalMemory(capacity, page_words=page_words)
    mem.alloc("buf", 1000, DType.FLOAT32)
    return mem


# ---------------------------------------------------------------------------
# backing selection
# ---------------------------------------------------------------------------


class TestBackingSelection:
    def test_small_capacity_stays_dense(self):
        mem = GlobalMemory.create(1 << 16)
        assert type(mem) is GlobalMemory and not mem.is_paged

    def test_threshold_switches_to_paged(self):
        mem = GlobalMemory.create(PAGED_THRESHOLD_WORDS)
        assert isinstance(mem, PagedGlobalMemory) and mem.is_paged
        # allocation of the whole space must not materialize it
        mem.alloc("huge", PAGED_THRESHOLD_WORDS, DType.FLOAT32)
        assert mem.resident_pages == 0

    def test_explicit_override_beats_threshold(self):
        assert not GlobalMemory.create(1 << 24, paged=False).is_paged
        assert GlobalMemory.create(1 << 10, paged=True).is_paged

    def test_env_forces_paged(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAGED_MEMORY", "1")
        assert GlobalMemory.create(1 << 10).is_paged
        monkeypatch.setenv("REPRO_PAGED_MEMORY", "0")
        assert not GlobalMemory.create(1 << 10).is_paged

    def test_device_spec_selects_paged(self):
        dev = _paged_device()
        assert dev.memory.is_paged
        assert dev.memory.page_words == SMALL_PAGE
        assert not Device().memory.is_paged  # default spec stays dense

    def test_paged_has_no_flat_words_array(self):
        # unconverted flat-ndarray layers must fail loudly, not
        # silently materialize gigabytes
        with pytest.raises(AttributeError):
            _paged_memory().words


# ---------------------------------------------------------------------------
# workload launch parity: all 9 workloads x 3 engines
# ---------------------------------------------------------------------------


def _launch_words(wl, inp, device, engine):
    runtime = GPURuntime(device, engine=engine)
    args, _handles = wl.setup_memory(device, inp)
    result = runtime.launch(wl.kernel, inp.grid, inp.block, args,
                            budget=wl.hang_budget)
    snap = device.memory.snapshot()
    if isinstance(snap, PagedSnapshot):
        snap = snap.materialize()
    return result, snap, device.memory.digest()


class TestWorkloadLaunchParity:
    @pytest.mark.parametrize("name", all_workloads())
    def test_paged_matches_dense_across_engines(self, name):
        wl = get_workload(name)
        inp = wl.generate_input(seed=7)
        for engine in ENGINES:
            res_d, words_d, dig_d = _launch_words(wl, inp, Device(), engine)
            res_p, words_p, dig_p = _launch_words(
                wl, inp, _paged_device(), engine)
            assert res_d == res_p, \
                f"{name}/{engine}: LaunchResult diverged dense vs paged"
            assert np.array_equal(words_d, words_p), \
                f"{name}/{engine}: device words diverged dense vs paged"
            assert dig_d == dig_p, \
                f"{name}/{engine}: content digest diverged dense vs paged"


# ---------------------------------------------------------------------------
# campaign parity: fi / fift over both backings
# ---------------------------------------------------------------------------


def _campaign_results(name, mode, paged, n=10, seed=11):
    wl = get_workload(name)
    device = _paged_device() if paged else Device()
    prog = HauberkProgram(wl, device=device)
    if mode == "fift":
        prog.train(seeds=[0])
    sites = enumerate_targets(wl.kernel)
    inp = wl.generate_input(0)
    specs = build_fault_specs(sites, inp.n_threads, masks_per_site=2,
                              bit_counts=(1, 6), seed=seed)[:n]
    result = Campaign(prog.trial_runner(mode, 0)).run(specs)
    return prog, result


class TestCampaignParity:
    @pytest.mark.parametrize("mode", ("fi", "fift"))
    @pytest.mark.parametrize("name", ("CP", "PNS"))
    def test_campaign_outcomes_identical(self, name, mode):
        prog_d, dense = _campaign_results(name, mode, paged=False)
        prog_p, paged = _campaign_results(name, mode, paged=True)
        assert dense.summary() == paged.summary()
        for a, b in zip(dense.trials, paged.trials):
            assert a.spec == b.spec
            assert a.outcome == b.outcome
            assert a.observation == b.observation
        if mode == "fift":
            assert prog_d.cb.alarm_raised == prog_p.cb.alarm_raised
            assert prog_d.cb.sdc_bit == prog_p.cb.sdc_bit
            assert list(prog_d.cb.events) == list(prog_p.cb.events)


# ---------------------------------------------------------------------------
# page-boundary semantics
# ---------------------------------------------------------------------------


class TestPageBoundaries:
    def test_allocation_straddles_pages(self):
        mem = PagedGlobalMemory(1 << 16, page_words=SMALL_PAGE)
        # base 200, 300 words: crosses the 256-word page boundary
        mem.alloc("pad", 200, DType.FLOAT32)
        buf = mem.alloc("buf", 300, DType.FLOAT32)
        data = np.arange(300, dtype=np.float32)
        mem.memcpy_htod(buf, data)
        assert np.array_equal(mem.memcpy_dtoh(buf), data)
        # scalar access on both sides of the boundary
        assert mem.load_f32(buf.base + 55) == 55.0
        assert mem.load_f32(buf.base + 56) == 56.0
        assert mem.resident_pages == 2

    def test_bulk_gather_scatter_across_pages(self):
        mem = _paged_memory()
        addrs = np.array([0, SMALL_PAGE - 1, SMALL_PAGE, 999], np.int64)
        mem.scatter_f32(addrs, np.array([1.0, 2.0, 3.0, 4.0]))
        assert mem.gather_f32(addrs).tolist() == [1.0, 2.0, 3.0, 4.0]
        # scalar loads agree with the bulk path
        assert [mem.load_f32(int(a)) for a in addrs] == [1.0, 2.0, 3.0, 4.0]

    def test_bulk_inject_spans_pages(self):
        mem = _paged_memory()
        addrs = [SMALL_PAGE - 1, SMALL_PAGE, 2 * SMALL_PAGE + 3]
        old, new = inject_word_faults(mem, addrs, [1, 1 << 31, 0xFF])
        assert old.tolist() == [0, 0, 0]
        assert new.tolist() == [1, 1 << 31, 0xFF]
        assert mem.load_word(SMALL_PAGE) == 1 << 31

    def test_bulk_inject_all_or_nothing(self):
        mem = _paged_memory()
        before = mem.snapshot()
        with pytest.raises(DeviceMemoryError,
                           match="fault injection outside mapped memory"):
            inject_word_faults(mem, [0, 500, mem.mapped_end], [1, 1, 1])
        # nothing was flipped: the bad address aborted the whole batch
        assert mem.golden_diff(before) == 0

    def test_gather_of_untouched_pages_is_zero_and_lazy(self):
        mem = PagedGlobalMemory(1 << 20, page_words=SMALL_PAGE)
        mem.alloc("big", 1 << 20, DType.FLOAT32)
        addrs = np.arange(0, 1 << 20, 1 << 10, dtype=np.int64)
        assert not mem.gather_i32(addrs).any()
        assert mem.resident_pages == 0  # reads never materialize


# ---------------------------------------------------------------------------
# bit-pattern fidelity through lazy materialization
# ---------------------------------------------------------------------------


class TestBitPatternFidelity:
    @settings(max_examples=60, deadline=None)
    @given(bits=word_patterns, offset=st.integers(min_value=0, max_value=999))
    def test_word_roundtrip_through_fresh_page(self, bits, offset):
        # every example gets a store whose page materializes lazily
        mem = _paged_memory()
        mem.store_word(offset, bits)
        assert mem.load_word(offset) == bits
        # the typed f32 round-trip must preserve the exact pattern too
        # (sNaN quiet bit, denormals, -0.0)
        mem.store_f32(offset, mem.load_f32(offset))
        assert mem.load_word(offset) == bits

    @settings(max_examples=30, deadline=None)
    @given(bits=st.lists(word_patterns, min_size=1, max_size=40))
    def test_bulk_roundtrip_matches_dense(self, bits):
        dense = GlobalMemory(1 << 16)
        paged = PagedGlobalMemory(1 << 16, page_words=SMALL_PAGE)
        addrs = np.arange(len(bits), dtype=np.int64) * 37  # page-hopping
        for mem in (dense, paged):
            mem.alloc("buf", 1 << 12, DType.FLOAT32)
            for a, b in zip(addrs, bits):
                mem.store_word(int(a), b)
        np.testing.assert_array_equal(
            dense.gather_f32(addrs).view(np.uint64),
            paged.gather_f32(addrs).view(np.uint64),
        )
        np.testing.assert_array_equal(
            dense.gather_i32(addrs), paged.gather_i32(addrs))
        # and writing those float values back keeps bit parity
        vals = dense.gather_f32(addrs)
        dense.scatter_f32(addrs, vals)
        paged.scatter_f32(addrs, vals)
        np.testing.assert_array_equal(
            dense.gather_words(addrs), paged.gather_words(addrs))

    def test_snapshot_materialize_preserves_patterns(self):
        mem = _paged_memory()
        for i, bits in enumerate(SPECIAL_BITS):
            mem.store_word(i * 83, bits)  # spread over several pages
        words = mem.snapshot().materialize()
        for i, bits in enumerate(SPECIAL_BITS):
            assert int(words[i * 83]) == bits


# ---------------------------------------------------------------------------
# copy-on-write snapshots
# ---------------------------------------------------------------------------


class TestCopyOnWriteSnapshots:
    def test_mutation_after_snapshot_does_not_alter_it(self):
        mem = _paged_memory()
        mem.store_word(10, 0xAAAA)
        snap = mem.snapshot()
        mem.store_word(10, 0xBBBB)
        mem.store_word(900, 0xCCCC)  # a page absent from the snapshot
        assert int(snap.gather(np.array([10]))[0]) == 0xAAAA
        assert int(snap.gather(np.array([900]))[0]) == 0
        assert snap.materialize()[10] == 0xAAAA

    def test_snapshot_is_page_refs_not_copies(self):
        mem = PagedGlobalMemory(1 << 20, page_words=SMALL_PAGE)
        mem.alloc("big", 1 << 20, DType.FLOAT32)
        mem.store_word(0, 1)
        snap = mem.snapshot()
        assert snap.resident_pages == 1  # one touched page, not 4096
        assert snap.resident_bytes == SMALL_PAGE * 4

    def test_golden_diff_is_page_granular(self):
        mem = _paged_memory()
        mem.store_word(5, 7)
        snap = mem.snapshot()
        assert mem.golden_diff(snap) == 0
        mem.store_word(5, 8)
        mem.store_word(600, 9)
        assert mem.golden_diff(snap) == 2
        mem.restore(snap)
        assert mem.golden_diff(snap) == 0
        assert mem.load_word(5) == 7 and mem.load_word(600) == 0

    def test_restore_then_write_does_not_corrupt_snapshot(self):
        # restore re-shares pages; the next write must COW again
        mem = _paged_memory()
        mem.store_word(20, 0x1111)
        snap = mem.snapshot()
        mem.restore(snap)
        mem.store_word(20, 0x2222)
        assert int(snap.gather(np.array([20]))[0]) == 0x1111

    def test_cross_backing_restore(self):
        dense = GlobalMemory(1 << 16)
        paged = _paged_memory()
        dense.alloc("buf", 1000, DType.FLOAT32)
        data = np.arange(1000, dtype=np.float32)
        dense.memcpy_htod(dense.allocations["buf"], data)
        paged.memcpy_htod(paged.allocations["buf"], data)
        # paged snapshot into dense memory and vice versa
        dense.restore(paged.snapshot())
        paged.restore(dense.snapshot())
        assert dense.digest() == paged.digest()

    def test_restore_mismatch_names_class_and_lengths(self):
        dense = GlobalMemory(1 << 16)
        dense.alloc("buf", 64, DType.FLOAT32)
        with pytest.raises(GPUError, match=(
                r"cannot restore GlobalMemory: ndarray snapshot of 5 words "
                r"does not match 64 allocated words")):
            dense.restore(np.zeros(5, np.uint32))
        paged = _paged_memory()
        with pytest.raises(GPUError, match=(
                r"cannot restore PagedGlobalMemory: PagedSnapshot snapshot "
                r"of \d+ words does not match 1000 allocated words")):
            paged.restore(PagedGlobalMemory(1 << 16).snapshot())


# ---------------------------------------------------------------------------
# the generic PagedWords store (hazard-map duty)
# ---------------------------------------------------------------------------


class TestPagedWordsStore:
    def test_int64_fill_minus_one(self):
        # the vector engine's owner/read_by maps over paged memory
        store = PagedWords(1 << 20, page_words=SMALL_PAGE,
                           dtype=np.int64, fill=-1)
        addrs = np.array([0, 12345, 999999], np.int64)
        assert store[addrs].tolist() == [-1, -1, -1]
        store[addrs] = np.array([7, 8, 9], np.int64)
        assert store[addrs].tolist() == [7, 8, 9]
        assert store[12345] == 8
        store[addrs[:2]] = -2  # scalar broadcast (multi-reader demotion)
        assert store[addrs].tolist() == [-2, -2, 9]
        assert store.resident_pages == 3

    def test_duplicate_scatter_is_last_wins(self):
        store = PagedWords(1 << 12, page_words=SMALL_PAGE)
        dense = np.zeros(1 << 12, np.uint32)
        addrs = np.array([3, 3, 300, 3, 300], np.int64)
        vals = np.array([1, 2, 3, 4, 5], np.uint32)
        store.scatter(addrs, vals)
        dense[addrs] = vals
        assert store.item(3) == dense[3] == 4
        assert store.item(300) == dense[300] == 5


# ---------------------------------------------------------------------------
# GB-scale: resident backing proportional to touched pages
# ---------------------------------------------------------------------------


class TestGBScale:
    def test_gb_footprint_resident_on_touch(self):
        row = run_gb_scale()
        assert row.footprint_words >= 1 << 28  # >= 1 GB of binary32 state
        assert row.output_ok and row.restore_clean
        assert row.golden_diff_words == row.injected_faults
        # resident backing is the touched pages, not the footprint:
        # 512 strided touches on 16 KiB pages ~ 8 MiB vs 1 GiB
        assert row.resident_bytes <= row.footprint_bytes / 64
        assert row.snapshot_resident_bytes <= 2 * row.resident_bytes
