"""R-Naive and R-Scatter baseline tests."""

import pytest

from repro.baselines import RNaiveHarness, rscatter_kernel
from repro.core.ftlib import HauberkFTLibrary
from repro.core.controlblock import ControlBlock
from repro.errors import CompileError
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir import kernel_to_source
from repro.swifi import FaultSpec, enumerate_targets
from repro.workloads import get_workload


class TestRNaive:
    def test_clean_run_not_detected(self):
        wl = get_workload("MRI-Q")
        harness = RNaiveHarness(wl)
        result = harness.run(wl.generate_input(0))
        assert result.status == "ok"
        assert not result.detected
        assert wl.spec.check(result.output, wl.golden(wl.generate_input(0)))

    def test_overhead_is_about_double(self):
        wl = get_workload("CP")
        device = Device()
        harness = RNaiveHarness(wl, device)
        inp = wl.generate_input(0)
        duplicated = harness.measure_time(inp)
        single = GPURuntime(device).launch(
            wl.kernel, inp.grid, inp.block, wl.setup_memory(device, inp)[0]
        ).kernel_time
        assert duplicated == pytest.approx(2 * single, rel=0.01)

    def test_detects_sdc_fault(self):
        wl = get_workload("MRI-Q")
        harness = RNaiveHarness(wl)
        site = next(
            s for s in enumerate_targets(wl.kernel)
            if s.name == "qr" and s.kind == "assign"
        )
        fault = FaultSpec(site=site.site, mask=1 << 29, thread=2, occurrence=wl.numk)
        result = harness.run(wl.generate_input(0), fault=fault)
        assert result.status == "ok"
        assert result.detected
        # the clean (second) output is returned
        assert wl.spec.check(result.output, wl.golden(wl.generate_input(0)))

    def test_crash_is_a_failure_not_a_detection(self):
        wl = get_workload("MRI-Q")
        harness = RNaiveHarness(wl)
        ptr = next(s for s in enumerate_targets(wl.kernel) if s.name == "x")
        fault = FaultSpec(site=ptr.site, mask=1 << 30, thread=0)
        result = harness.run(wl.generate_input(0), fault=fault)
        assert result.status == "crash"
        assert not result.detected

    def test_memory_overhead_reported(self):
        wl = get_workload("CP")
        harness = RNaiveHarness(wl)
        result = harness.run(wl.generate_input(0))
        assert result.extra_host_bytes > 0


class TestRScatter:
    def test_transformed_kernel_still_correct(self):
        for name in ("CP", "MRI-Q", "PNS", "SAD"):
            wl = get_workload(name)
            rk = rscatter_kernel(wl.kernel)
            device = Device()
            inp = wl.generate_input(0)
            args, handles = wl.setup_memory(device, inp)
            GPURuntime(device).launch(rk, inp.grid, inp.block, args,
                                      budget=wl.hang_budget,
                                      lib=HauberkFTLibrary(ControlBlock()))
            out = wl.read_output(device, inp, handles)
            assert wl.spec.check(out, wl.golden(inp)), name

    def test_duplicates_definitions(self):
        wl = get_workload("MRI-Q")
        rk = rscatter_kernel(wl.kernel)
        text = kernel_to_source(rk)
        assert "__rs_qr" in text
        assert "__rsflag" in text
        assert "__hauberk_checksum_validate(0, __rsflag)" in text

    def test_shared_memory_doubling_fails_tpacf(self):
        wl = get_workload("TPACF")
        with pytest.raises(CompileError):
            rscatter_kernel(wl.kernel)

    def test_detects_divergence(self):
        """A fault in the original chain diverges it from the shadow."""
        wl = get_workload("MRI-Q")
        rk = rscatter_kernel(wl.kernel)
        device = Device()
        runtime = GPURuntime(device)
        inp = wl.generate_input(0)
        args, handles = wl.setup_memory(device, inp)

        # corrupt one element of an *output-feeding* chain by patching
        # memory mid-way is complex; instead flip an input buffer word
        # between the two chains' reads is impossible (same loads), so
        # verify the checker via the flag statically: run clean first
        cb = ControlBlock()
        runtime.launch(rk, inp.grid, inp.block, args,
                       budget=wl.hang_budget, lib=HauberkFTLibrary(cb))
        assert not cb.alarm_raised

    def test_overhead_near_double(self):
        wl = get_workload("RPES")
        device = Device()
        inp = wl.generate_input(0)
        args, _ = wl.setup_memory(device, inp)
        base = GPURuntime(device).launch(
            wl.kernel, inp.grid, inp.block, args, budget=wl.hang_budget
        ).kernel_time
        args, _ = wl.setup_memory(device, inp)
        rk = rscatter_kernel(wl.kernel)
        dup = GPURuntime(device).launch(
            rk, inp.grid, inp.block, args, budget=wl.hang_budget,
            lib=HauberkFTLibrary(ControlBlock()),
        ).kernel_time
        overhead = dup / base - 1
        assert 0.6 < overhead < 1.2  # the paper's ">84%" regime
