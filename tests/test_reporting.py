"""Tests for harness/reporting.py: tables, pct, and the JSON sink."""

import json

import pytest

from repro.harness.reporting import (
    ReportSink,
    format_table,
    get_report_sink,
    pct,
    print_table,
    set_report_sink,
    slugify,
)


@pytest.fixture(autouse=True)
def _no_leaked_sink():
    yield
    set_report_sink(None)


class TestFormatTable:
    def test_column_widths_fit_widest_cell(self):
        text = format_table(
            "T", ["a", "long-header"], [("wider-than-header", 1), ("x", 22)]
        )
        lines = text.splitlines()
        header, rule, row1, row2 = lines[2:]
        # every rule segment is exactly as wide as its column
        widths = [len(seg) for seg in rule.split("  ")]
        assert widths == [len("wider-than-header"), len("long-header")]
        # all body lines share the same column starts
        assert row1.index("1") == header.index("long-header")
        assert row2.index("22") == header.index("long-header")

    def test_title_rule_matches_title(self):
        text = format_table("My Title", ["h"], [])
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_float_cells_render_3_significant_digits(self):
        text = format_table("T", ["v"], [(0.123456,), (1234.5678,)])
        assert "0.123" in text
        assert "1.23e+03" in text

    def test_empty_rows(self):
        text = format_table("T", ["a", "b"], [])
        assert len(text.splitlines()) == 4  # title, rule, header, dashes


class TestPct:
    def test_rounding(self):
        assert pct(0.123) == " 12.3%"
        assert pct(0.9995) == "100.0%"  # rounds up at the boundary
        assert pct(0.0) == "  0.0%"
        assert pct(1.0) == "100.0%"

    def test_fixed_width(self):
        # cells align in tables: width is constant for in-range values
        assert len(pct(0.0)) == len(pct(0.55)) == len(pct(1.0)) == 6


class TestSlugify:
    def test_safe_names(self):
        assert slugify("Figure 1 - error sensitivity (a/b)") == (
            "figure-1-error-sensitivity-a-b"
        )
        assert slugify("///") == "table"


class TestReportSink:
    def test_round_trip(self, tmp_path):
        sink = ReportSink(tmp_path)
        path = sink.emit("My Table", ["name", "value"], [["a", 1], ["b", 2.5]])
        doc = ReportSink.load(path)
        assert doc == {
            "title": "My Table",
            "headers": ["name", "value"],
            "rows": [["a", 1], ["b", 2.5]],
        }
        assert sink.written == [path]

    def test_non_jsonable_cells_stringified(self, tmp_path):
        class Odd:
            def __str__(self):
                return "odd!"

        sink = ReportSink(tmp_path)
        path = sink.emit("T", ["c"], [[Odd()], [float("nan")]])
        doc = json.loads(path.read_text())
        assert doc["rows"][0] == ["odd!"]
        assert doc["rows"][1] == ["nan"]

    def test_print_table_routes_to_installed_sink(self, tmp_path, capsys):
        sink = ReportSink(tmp_path)
        set_report_sink(sink)
        assert get_report_sink() is sink
        print_table("Routed", ["h"], [(1,), (2,)])
        out = capsys.readouterr().out
        assert "Routed" in out  # text table still printed
        assert len(sink.written) == 1
        assert ReportSink.load(sink.written[0])["rows"] == [[1], [2]]

    def test_print_table_without_sink(self, capsys):
        set_report_sink(None)
        print_table("Plain", ["h"], [(1,)])
        assert "Plain" in capsys.readouterr().out

    def test_emit_accepts_iterator_rows(self, tmp_path):
        sink = ReportSink(tmp_path)
        path = sink.emit("Iter", ["x"], iter([(i,) for i in range(3)]))
        assert ReportSink.load(path)["rows"] == [[0], [1], [2]]
