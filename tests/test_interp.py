"""Interpreter semantics: compiler path, lockstep path, and their parity."""

import math

import numpy as np
import pytest

from repro.errors import KernelCrash, KernelHang, KIRValidationError
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir import parse_kernel
from repro.kir.interp.compiler import CompiledKernel
from repro.kir.interp.evalcore import (
    ExecContext,
    InstrumentationLibrary,
    c_int_cast,
    fdiv,
    idiv,
    imod,
    truthy,
)
from repro.kir.interp.lockstep import LockstepProgram
from repro.kir.types import DType

from conftest import launch_saxpy


def run_scalar_kernel(src, args, n_out=1, out_dtype=DType.FLOAT32, grid=1, block=1):
    """Launch a kernel with one output buffer named 'out'."""
    device = Device()
    runtime = GPURuntime(device)
    kernel = parse_kernel(src)
    out = device.memory.alloc("out", max(n_out, 1), out_dtype)
    full_args = dict(args)
    full_args["out"] = out
    runtime.launch(kernel, grid, block, full_args)
    return device.memory.memcpy_dtoh(out)


class TestArithmeticSemantics:
    def test_fdiv_semantics(self):
        assert fdiv(1.0, 0.0) == math.inf
        assert fdiv(-1.0, 0.0) == -math.inf
        assert math.isnan(fdiv(0.0, 0.0))
        assert fdiv(6.0, 3.0) == 2.0

    def test_idiv_truncates_toward_zero(self):
        assert idiv(7, 2) == 3
        assert idiv(-7, 2) == -3
        assert idiv(7, -2) == -3

    def test_idiv_by_zero_crashes(self):
        with pytest.raises(KernelCrash):
            idiv(1, 0)
        with pytest.raises(KernelCrash):
            imod(1, 0)

    def test_imod_sign_follows_dividend(self):
        assert imod(7, 3) == 1
        assert imod(-7, 3) == -1

    def test_c_int_cast(self):
        assert c_int_cast(3.9) == 3
        assert c_int_cast(-3.9) == -3
        assert c_int_cast(float("nan")) == 0
        assert c_int_cast(1e30) == 2**31 - 1
        assert c_int_cast(-1e30) == -(2**31)

    def test_truthy_nan_is_true(self):
        assert truthy(float("nan"))
        assert not truthy(0)
        assert truthy(-2)

    def test_fp_div_by_zero_returns_inf_in_kernel(self):
        out = run_scalar_kernel(
            "kernel k(float a, float* out) { out[0] = a / 0.0; }", {"a": 3.0}
        )
        assert out[0] == np.float32(math.inf)

    def test_int_wraparound_in_kernel(self):
        out = run_scalar_kernel(
            "kernel k(int a, int* out) { out[0] = a * 2; }",
            {"a": 2**30}, out_dtype=DType.INT32,
        )
        assert out[0] == -(2**31)

    def test_sqrt_of_negative_is_nan(self):
        out = run_scalar_kernel(
            "kernel k(float a, float* out) { out[0] = sqrt(a); }", {"a": -1.0}
        )
        assert math.isnan(out[0])

    def test_shift_and_bitops(self):
        out = run_scalar_kernel(
            """
kernel k(int a, int* out) {
    out[0] = (a << 2) | 1;
    out[1] = a >> 1;
    out[2] = a ^ 255;
    out[3] = ~a;
}
""",
            {"a": 12}, n_out=4, out_dtype=DType.INT32,
        )
        assert list(out) == [49, 6, 243, -13]

    def test_short_circuit_avoids_crash(self):
        out = run_scalar_kernel(
            "kernel k(int a, int* out) { if ((a != 0) && (10 / a > 1)) { out[0] = 1; } }",
            {"a": 0}, out_dtype=DType.INT32,
        )
        assert out[0] == 0


class TestControlFlow:
    def test_break_continue(self):
        out = run_scalar_kernel(
            """
kernel k(int n, int* out) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 2) { continue; }
        if (i == 5) { break; }
        s = s + i;
    }
    out[0] = s;
}
""",
            {"n": 100}, out_dtype=DType.INT32,
        )
        assert out[0] == 0 + 1 + 3 + 4

    def test_return_exits_thread(self):
        out = run_scalar_kernel(
            """
kernel k(int n, int* out) {
    out[0] = 1;
    if (n > 0) { return; }
    out[0] = 2;
}
""",
            {"n": 1}, out_dtype=DType.INT32,
        )
        assert out[0] == 1

    def test_while_loop(self):
        out = run_scalar_kernel(
            """
kernel k(int n, int* out) {
    int i = 0;
    while (i * i < n) { i++; }
    out[0] = i;
}
""",
            {"n": 17}, out_dtype=DType.INT32,
        )
        assert out[0] == 5

    def test_do_while_executes_once(self):
        out = run_scalar_kernel(
            """
kernel k(int n, int* out) {
    int i = 100;
    do { i++; } while (i < n);
    out[0] = i;
}
""",
            {"n": 0}, out_dtype=DType.INT32,
        )
        assert out[0] == 101


class TestFailures:
    def test_off_device_load_crashes(self, runtime, saxpy_kernel):
        device = runtime.device
        ay = device.memory.alloc("y", 4, DType.FLOAT32)
        wild = device.memory.capacity + 3  # corrupted base pointer
        with pytest.raises(KernelCrash):
            runtime.launch(
                saxpy_kernel, 1, 8,
                args={"x": wild, "y": ay, "a": 1.0, "n": 8},
            )

    def test_infinite_loop_hangs(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel(
            "kernel k(int n, int* out) { int i = 0; while (n < 10) { i++; } out[0] = i; }"
        )
        out = device.memory.alloc("out", 1, DType.INT32)
        with pytest.raises(KernelHang):
            runtime.launch(k, 1, 1, {"n": 1, "out": out}, budget=5000)

    def test_shared_oob_crashes(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel(
            "kernel k(int n, int* out) { shared int s[4]; s[n] = 1; out[0] = 1; }"
        )
        out = device.memory.alloc("out", 1, DType.INT32)
        with pytest.raises(KernelCrash):
            runtime.launch(k, 1, 1, {"n": 100, "out": out})


class TestInstrumentationCalls:
    def test_library_receives_evaluated_args(self):
        seen = []

        class Probe(InstrumentationLibrary):
            def lib_probe(self, ctx, frame, a, b):
                seen.append((a, b, frame["x"]))

        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel(
            'kernel k(int n) { int x = n * 2; __hauberk_probe(x + 1, "x"); }'
        )
        runtime.launch(k, 1, 1, {"n": 5}, lib=Probe())
        assert seen == [(11, "x", 10)]

    def test_unbound_call_crashes(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel("kernel k(int n) { __hauberk_nothing(n); }")
        with pytest.raises(KernelCrash):
            runtime.launch(k, 1, 1, {"n": 1}, lib=InstrumentationLibrary())


class TestLockstep:
    SYNC_SRC = """
kernel reduce(float* data, float* out, int n) {
    shared float tile[64];
    int t = threadIdx.x;
    tile[t] = data[blockIdx.x * blockDim.x + t];
    __syncthreads();
    if (t == 0) {
        float s = 0.0;
        for (int i = 0; i < blockDim.x; i++) { s = s + tile[i]; }
        out[blockIdx.x] = s;
    }
}
"""

    def test_barrier_reduction(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel(self.SYNC_SRC)
        assert k.uses_sync
        data = np.arange(32, dtype=np.float32)
        ad = device.memory.alloc("d", 32, DType.FLOAT32)
        ao = device.memory.alloc("o", 2, DType.FLOAT32)
        device.memory.memcpy_htod(ad, data)
        runtime.launch(k, 2, 16, {"data": ad, "out": ao, "n": 32})
        out = device.memory.memcpy_dtoh(ao)
        assert out[0] == data[:16].sum()
        assert out[1] == data[16:].sum()

    def test_compiler_refuses_sync_kernels(self):
        k = parse_kernel(self.SYNC_SRC)
        with pytest.raises(KIRValidationError):
            CompiledKernel(k, costmodel=None or _cm())

    def test_lockstep_matches_compiler_on_plain_kernel(self, saxpy_kernel):
        # run the same kernel through both paths; outputs must agree
        device_a = Device()
        _res, out_fast = launch_saxpy(GPURuntime(device_a), saxpy_kernel)

        device_b = Device()
        prog = LockstepProgram(saxpy_kernel)
        xs = np.arange(64, dtype=np.float32)
        ys = np.ones(64, dtype=np.float32)
        ax = device_b.memory.alloc("x", 64, DType.FLOAT32)
        ay = device_b.memory.alloc("y", 64, DType.FLOAT32)
        device_b.memory.memcpy_htod(ax, xs)
        device_b.memory.memcpy_htod(ay, ys)
        ctx = ExecContext(device_b.memory)
        base = {"x": ax.base, "y": ay.base, "a": 2.0, "n": 64,
                "gridDim.x": 1, "gridDim.y": 1, "blockDim.x": 64, "blockDim.y": 1,
                "blockIdx.x": 0, "blockIdx.y": 0}
        frames = []
        for t in range(64):
            fr = dict(base)
            fr["threadIdx.x"] = t
            fr["threadIdx.y"] = 0
            frames.append(fr)
        prog.run_block(frames, ctx)
        out_slow = device_b.memory.memcpy_dtoh(ay)
        assert np.array_equal(out_fast, out_slow)

    def test_lockstep_hang_detection(self):
        device = Device()
        runtime = GPURuntime(device)
        k = parse_kernel(
            """
kernel k(int n, int* out) {
    shared int s[4];
    __syncthreads();
    int i = 0;
    while (n < 10) { i++; }
    out[0] = i;
}
"""
        )
        out = device.memory.alloc("out", 1, DType.INT32)
        with pytest.raises(KernelHang):
            runtime.launch(k, 1, 4, {"n": 1, "out": out}, budget=2000)


def _cm():
    from repro.gpu.costmodel import CostModel

    return CostModel()


class TestCycleAccounting:
    def test_loop_cycles_attributed(self, runtime, accum_kernel):
        device = runtime.device
        xs = np.arange(16, dtype=np.float32)
        ad = device.memory.alloc("d", 16, DType.FLOAT32)
        ao = device.memory.alloc("o", 32, DType.FLOAT32)
        device.memory.memcpy_htod(ad, xs)
        res = runtime.launch(accum_kernel, 1, 32, {"data": ad, "out": ao, "n": 16})
        assert 0.5 < res.loop_fraction < 1.0
        assert res.total_cycles > 0
        assert res.max_thread_steps > 16

    def test_cost_scale_discounts(self):
        src = "kernel k(int n, int* out) { int a = n * 3 + 1; out[0] = a; }"
        k1 = parse_kernel(src)
        k2 = parse_kernel(src)
        k2.body[0].cost_scale = 0.5

        def cycles(k):
            device = Device()
            runtime = GPURuntime(device)
            out = device.memory.alloc("out", 1, DType.INT32)
            return runtime.launch(k, 1, 1, {"n": 1, "out": out}).total_cycles

        assert cycles(k2) < cycles(k1)
